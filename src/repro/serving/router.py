"""Multi-base-model deployment: route variants to per-base GPU groups.

Paper §5.1: *"If there are M base models and M > 1, we divide the GPU
cluster into M sets of GPUs, each dedicated to serving a particular base
model and its fine-tuned variants."*  The router is a thin lineage policy
over the cluster serving layer: it builds a
:class:`~repro.serving.cluster.ClusterGateway` with one replica per base
group and a :class:`~repro.serving.cluster.LineageAffinityBalancer` pinned
base → replica, so requests can be submitted online (out of order, across
groups) or replayed from a trace — both paths land each request on the
engine owning its variant's lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hardware.cluster import GPUNode
from ..workload.spec import Trace
from .base import EngineConfig, ServingEngine, create_engine
from .cluster import ClusterGateway, LineageAffinityBalancer
from .gateway import CompletionCallback, TokenCallback
from .metrics import ServingResult
from .model_manager import ModelManager
from .scheduler import SchedulerConfig

__all__ = ["BaseModelGroup", "MultiBaseRouter"]


@dataclass
class BaseModelGroup:
    """One base model's serving slice: registry + GPUs + engine knobs."""

    base_id: str
    manager: ModelManager
    node: GPUNode
    scheduler_config: SchedulerConfig = field(default_factory=SchedulerConfig)
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    engine_name: str = "deltazip"

    def engine(self) -> ServingEngine:
        return create_engine(self.engine_name, self.manager, self.node,
                             scheduler_config=self.scheduler_config,
                             engine_config=self.engine_config)


class MultiBaseRouter:
    """Routes requests to the group owning their variant's base model."""

    def __init__(self, groups: List[BaseModelGroup]):
        if not groups:
            raise ValueError("need at least one base-model group")
        self.groups = {g.base_id: g for g in groups}
        if len(self.groups) != len(groups):
            raise ValueError("duplicate base_id among groups")
        self._owner: Dict[str, str] = {}
        for g in groups:
            for variant in g.manager.variants():
                if variant.model_id in self._owner:
                    raise ValueError(
                        f"variant {variant.model_id!r} registered in "
                        f"multiple groups")
                self._owner[variant.model_id] = g.base_id
            self._owner.setdefault(g.base_id, g.base_id)

    # ------------------------------------------------------------------ #
    def owner_of(self, model_id: str) -> str:
        if model_id not in self._owner:
            raise KeyError(f"no group serves model {model_id!r}")
        return self._owner[model_id]

    def partition(self, trace: Trace) -> Dict[str, Trace]:
        """Split a trace into per-group traces (lineage-based)."""
        buckets: Dict[str, List] = {base_id: [] for base_id in self.groups}
        for req in trace:
            buckets[self.owner_of(req.model_id)].append(req)
        out = {}
        for base_id, requests in buckets.items():
            model_ids = sorted({r.model_id for r in requests})
            out[base_id] = Trace(requests=list(requests),
                                 model_ids=model_ids,
                                 duration_s=trace.duration_s)
        return out

    def gateway(self, on_token: Optional[TokenCallback] = None,
                on_request_complete: Optional[CompletionCallback] = None,
                collect_timeline: bool = False) -> ClusterGateway:
        """An online cluster gateway over the per-base groups.

        One replica per group (named after its ``base_id``), with a
        lineage balancer pinned so every variant's requests land on the
        replica that owns — and keeps resident — its base and deltas.
        Submissions may arrive in any order across groups.
        """
        balancer = LineageAffinityBalancer(owner_of=self.owner_of)
        names = list(self.groups)
        gateway = ClusterGateway.from_engines(
            [self.groups[base_id].engine() for base_id in names],
            names=names, balancer=balancer, on_token=on_token,
            on_request_complete=on_request_complete,
            collect_timeline=collect_timeline)
        for base_id, replica in zip(names, gateway.replicas):
            balancer.pin(base_id, replica)
        return gateway

    def run(self, trace: Trace) -> Dict[str, ServingResult]:
        """Serve a trace across the groups; returns per-base results plus
        a merged ``"__cluster__"`` entry.

        A thin replay adapter over :meth:`gateway`: routing a trace
        through the pinned lineage balancer partitions it exactly as
        :meth:`partition` does, so per-base records are identical to
        running each partition on a standalone engine."""
        gateway = self.gateway()
        gateway.replay(trace)
        results = {base_id: res
                   for base_id, res in gateway.results_by_replica().items()
                   if res.n_requests > 0}
        results["__cluster__"] = ServingResult.merge(
            list(results.values()), engine="multi-base",
            config={"groups": sorted(self.groups)})
        return results
