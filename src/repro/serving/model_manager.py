"""Model Manager: registry, delta zoo, lineage metadata (paper Fig 4).

Tracks every registered artifact (base models, compressed FMT deltas, LoRA
adapters), its byte size, lineage (which base it derives from), and its
current storage tier.  The serving engines consult it for swap planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compression.configs import CompressionConfig
from ..hardware.memory import Tier
from .models import ServedModelSpec

__all__ = ["ArtifactKind", "RegisteredModel", "ModelManager"]


class ArtifactKind:
    BASE = "base"
    DELTA = "delta"
    LORA = "lora"
    FULL = "full"  # uncompressed fine-tuned checkpoint (baseline serving)


@dataclass
class RegisteredModel:
    """Metadata row for one servable artifact."""

    model_id: str
    kind: str
    nbytes: int
    base_model_id: Optional[str] = None
    compression: Optional[CompressionConfig] = None
    tier: Tier = Tier.DISK
    last_used_s: float = 0.0

    @property
    def is_variant(self) -> bool:
        return self.kind in (ArtifactKind.DELTA, ArtifactKind.LORA,
                             ArtifactKind.FULL)


class ModelManager:
    """In-memory registry standing in for the metadata store + delta zoo."""

    def __init__(self, spec: ServedModelSpec):
        self.spec = spec
        self._models: Dict[str, RegisteredModel] = {}

    # ------------------------------------------------------------------ #
    def register_base(self, model_id: str) -> RegisteredModel:
        entry = RegisteredModel(model_id=model_id, kind=ArtifactKind.BASE,
                                nbytes=self.spec.fp16_nbytes)
        return self._insert(entry)

    def register_delta(self, model_id: str, base_model_id: str,
                       compression_ratio: float,
                       config: Optional[CompressionConfig] = None) -> RegisteredModel:
        self._require(base_model_id, ArtifactKind.BASE)
        entry = RegisteredModel(
            model_id=model_id, kind=ArtifactKind.DELTA,
            nbytes=self.spec.delta_nbytes(compression_ratio),
            base_model_id=base_model_id, compression=config)
        return self._insert(entry)

    def register_full(self, model_id: str, base_model_id: str) -> RegisteredModel:
        """An uncompressed FMT checkpoint (what vLLM-SCB swaps)."""
        self._require(base_model_id, ArtifactKind.BASE)
        entry = RegisteredModel(model_id=model_id, kind=ArtifactKind.FULL,
                                nbytes=self.spec.fp16_nbytes,
                                base_model_id=base_model_id)
        return self._insert(entry)

    def register_lora(self, model_id: str, base_model_id: str,
                      adapter_nbytes: int) -> RegisteredModel:
        self._require(base_model_id, ArtifactKind.BASE)
        entry = RegisteredModel(model_id=model_id, kind=ArtifactKind.LORA,
                                nbytes=adapter_nbytes,
                                base_model_id=base_model_id)
        return self._insert(entry)

    # ------------------------------------------------------------------ #
    def get(self, model_id: str) -> RegisteredModel:
        if model_id not in self._models:
            raise KeyError(f"unknown model {model_id!r}")
        return self._models[model_id]

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._models

    def variants(self, base_model_id: Optional[str] = None) -> List[RegisteredModel]:
        out = [m for m in self._models.values() if m.is_variant]
        if base_model_id is not None:
            out = [m for m in out if m.base_model_id == base_model_id]
        return out

    def bases(self) -> List[RegisteredModel]:
        return [m for m in self._models.values()
                if m.kind == ArtifactKind.BASE]

    def lineage(self, model_id: str) -> List[str]:
        """Chain from this artifact to its root base model."""
        chain = [model_id]
        entry = self.get(model_id)
        while entry.base_model_id is not None:
            chain.append(entry.base_model_id)
            entry = self.get(entry.base_model_id)
        return chain

    # ------------------------------------------------------------------ #
    def _insert(self, entry: RegisteredModel) -> RegisteredModel:
        if entry.model_id in self._models:
            raise ValueError(f"model {entry.model_id!r} already registered")
        self._models[entry.model_id] = entry
        return entry

    def _require(self, model_id: str, kind: str) -> None:
        entry = self.get(model_id)
        if entry.kind != kind:
            raise ValueError(
                f"{model_id!r} is a {entry.kind}, expected {kind}")
