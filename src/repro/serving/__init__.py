"""DeltaZip serving engine, baselines, and serving metrics (paper §5-6)."""

from .base import (Admission, ENGINES, EngineConfig, ServingEngine,
                   TimelineEvent, create_engine, register_engine)
from .baselines import DedicatedEngine, VLLMSCBEngine
from .cluster import (Autoscaler, AutoscalerConfig, AutoscalerSample,
                      BALANCERS, ClusterGateway, ConversationAffinityBalancer,
                      LeastOutstandingBalancer, LineageAffinityBalancer,
                      LoadBalancer, Replica, RoundRobinBalancer,
                      create_balancer)
from .costs import BatchComposition, IterationCostModel
from .disagg import (DisaggregatedEngine, PoolAutoscaler, PoolSample,
                     PoolScalingPolicy, ShardedEngine)
from .kv_transfer import (InterconnectModel, KvTransferPlan,
                          plan_kv_transfer)
from .economics import (DeploymentCost, GPU_HOURLY_USD, compare_deployments,
                        cost_per_tenant, deployment_cost)
from .engine import DeltaZipEngine
from .gateway import ServingGateway
from .handle import HandleStatus, RequestHandle
from .metrics import (EngineStats, ServingResult, UNTENANTED,
                      jain_fairness_index, slo_attainment,
                      slo_attainment_by_tenant, summarize,
                      summarize_by_tenant)
from .model_manager import ArtifactKind, ModelManager, RegisteredModel
from .packed_compute import PackedDeltaLinear, packed_matmul
from .prefix_cache import PrefixCache, prefix_block_keys
from .router import BaseModelGroup, MultiBaseRouter
from .models import (LLAMA_13B, LLAMA_70B, LLAMA_7B, MODEL_SPECS,
                     PYTHIA_2_8B, ServedModelSpec)
from .request import RequestRecord, RequestState, ServingRequest
from .runner import DecoupledModelRunner
from .sbmm import group_requests_by_delta, sbmm_forward, sbmm_reference
from .scheduler import (ContinuousBatchScheduler, SchedulerConfig,
                        SchedulingDecision)
from .streaming_metrics import (QuantileSketch, RecordPolicy,
                                ReservoirSampler, SKETCH_RELATIVE_ERROR,
                                StreamingMetrics, TenantCounters)
from .tenancy import (AdmissionController, AdmissionDecision, DEFAULT_TENANT,
                      SLO_CLASSES, Tenant, TenantAdmissionStats,
                      TenantGateway, TokenBucket)
from .tuning import ProfilePoint, pick_optimal_n, profile_concurrent_deltas

__all__ = [
    "Admission", "ENGINES", "ServingEngine", "ServingGateway",
    "HandleStatus", "RequestHandle",
    "create_engine", "register_engine",
    "DedicatedEngine", "VLLMSCBEngine",
    "Autoscaler", "AutoscalerConfig", "AutoscalerSample", "BALANCERS",
    "ClusterGateway", "ConversationAffinityBalancer",
    "LeastOutstandingBalancer", "LineageAffinityBalancer",
    "LoadBalancer", "Replica", "RoundRobinBalancer", "create_balancer",
    "BatchComposition", "IterationCostModel",
    "DisaggregatedEngine", "PoolAutoscaler", "PoolSample",
    "PoolScalingPolicy", "ShardedEngine",
    "InterconnectModel", "KvTransferPlan", "plan_kv_transfer",
    "DeploymentCost", "GPU_HOURLY_USD", "compare_deployments",
    "cost_per_tenant", "deployment_cost",
    "DeltaZipEngine", "EngineConfig", "TimelineEvent",
    "EngineStats", "ServingResult", "slo_attainment", "summarize",
    "UNTENANTED", "jain_fairness_index", "slo_attainment_by_tenant",
    "summarize_by_tenant",
    "AdmissionController", "AdmissionDecision", "DEFAULT_TENANT",
    "SLO_CLASSES", "Tenant", "TenantAdmissionStats", "TenantGateway",
    "TokenBucket",
    "PackedDeltaLinear", "packed_matmul",
    "PrefixCache", "prefix_block_keys",
    "BaseModelGroup", "MultiBaseRouter",
    "ArtifactKind", "ModelManager", "RegisteredModel",
    "LLAMA_13B", "LLAMA_70B", "LLAMA_7B", "MODEL_SPECS", "PYTHIA_2_8B",
    "ServedModelSpec",
    "RequestRecord", "RequestState", "ServingRequest",
    "DecoupledModelRunner",
    "group_requests_by_delta", "sbmm_forward", "sbmm_reference",
    "ContinuousBatchScheduler", "SchedulerConfig", "SchedulingDecision",
    "QuantileSketch", "RecordPolicy", "ReservoirSampler",
    "SKETCH_RELATIVE_ERROR", "StreamingMetrics", "TenantCounters",
    "ProfilePoint", "pick_optimal_n", "profile_concurrent_deltas",
]
