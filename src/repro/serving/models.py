"""Served-model shape specs: the sizes the serving cost model reasons about.

The serving experiments run at the paper's scales (Llama-2 7B/13B/70B) —
no tensors of that size are ever materialized; these specs only feed the
analytical kernel and transfer models.  ``from_transformer_config`` bridges
the functional tiny models into the same machinery for integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServedModelSpec", "LLAMA_7B", "LLAMA_13B", "LLAMA_70B",
           "PYTHIA_2_8B", "MODEL_SPECS"]

FP16 = 2  # bytes per served parameter


@dataclass(frozen=True)
class ServedModelSpec:
    """Transformer shape + derived byte/flop quantities.

    Attributes mirror Llama-family configs; ``n_kv_heads < n_heads`` models
    grouped-query attention (the 70B case).
    """

    name: str
    n_layers: int
    dim: int
    mlp_hidden: int
    vocab_size: int
    n_heads: int
    n_kv_heads: Optional[int] = None

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    # ------------------------------------------------------------------ #
    # parameter counts / bytes
    # ------------------------------------------------------------------ #
    @property
    def linear_params_per_layer(self) -> int:
        """The seven projections ΔCompress packs and SBMM serves."""
        kv_dim = self.kv_heads * self.head_dim
        attn = self.dim * self.dim * 2 + self.dim * kv_dim * 2  # q,o + k,v
        mlp = 3 * self.dim * self.mlp_hidden
        return attn + mlp

    @property
    def linear_params(self) -> int:
        return self.linear_params_per_layer * self.n_layers

    @property
    def extra_params(self) -> int:
        """Embeddings + LM head + norms (uncompressed in the artifact)."""
        embed = self.vocab_size * self.dim * 2
        norms = self.dim * (2 * self.n_layers + 1)
        return embed + norms

    @property
    def total_params(self) -> int:
        return self.linear_params + self.extra_params

    @property
    def fp16_nbytes(self) -> int:
        return self.total_params * FP16

    def delta_nbytes(self, compression_ratio: float) -> int:
        """Compressed delta size for a given end-to-end ratio."""
        if compression_ratio <= 0:
            raise ValueError("compression ratio must be positive")
        return int(self.fp16_nbytes / compression_ratio)

    def kv_bytes_per_token(self) -> int:
        """FP16 K+V bytes appended per generated/prefilled token."""
        return 2 * self.n_layers * self.kv_heads * self.head_dim * FP16

    # ------------------------------------------------------------------ #
    # per-layer GEMM shapes, for the iteration cost model
    # ------------------------------------------------------------------ #
    def layer_gemm_shapes(self):
        """(k, n) of each linear in one block (q, k, v, o, gate, up, down)."""
        kv_dim = self.kv_heads * self.head_dim
        return [
            (self.dim, self.dim),        # q_proj
            (self.dim, kv_dim),          # k_proj
            (self.dim, kv_dim),          # v_proj
            (self.dim, self.dim),        # o_proj
            (self.dim, self.mlp_hidden),  # gate_proj
            (self.dim, self.mlp_hidden),  # up_proj
            (self.mlp_hidden, self.dim),  # down_proj
        ]

    @staticmethod
    def from_transformer_config(config) -> "ServedModelSpec":
        """Bridge a :class:`repro.nn.TransformerConfig` into serving."""
        return ServedModelSpec(
            name=config.name, n_layers=config.n_layers, dim=config.dim,
            mlp_hidden=config.mlp_hidden, vocab_size=config.vocab_size,
            n_heads=config.n_heads)


LLAMA_7B = ServedModelSpec(name="llama-7b", n_layers=32, dim=4096,
                           mlp_hidden=11008, vocab_size=32000, n_heads=32)
LLAMA_13B = ServedModelSpec(name="llama-13b", n_layers=40, dim=5120,
                            mlp_hidden=13824, vocab_size=32000, n_heads=40)
LLAMA_70B = ServedModelSpec(name="llama-70b", n_layers=80, dim=8192,
                            mlp_hidden=28672, vocab_size=32000, n_heads=64,
                            n_kv_heads=8)
PYTHIA_2_8B = ServedModelSpec(name="pythia-2.8b", n_layers=32, dim=2560,
                              mlp_hidden=10240, vocab_size=50304, n_heads=32)

MODEL_SPECS = {
    "llama-7b": LLAMA_7B,
    "llama-13b": LLAMA_13B,
    "llama-70b": LLAMA_70B,
    "pythia-2.8b": PYTHIA_2_8B,
}
