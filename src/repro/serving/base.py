"""The unified serving-engine protocol: one iteration loop, many engines.

The paper's core claim is that a single decoupled base+delta design
subsumes FMT-delta, LoRA, and full-model serving under one scheduler.
This module makes that claim structural: every engine shares the same
arrivals → admit → execute → retire template implemented once in
:class:`ServingEngine`, and differs only in the hooks it overrides
(:meth:`~ServingEngine.admit`, :meth:`~ServingEngine.iteration_cost`,
:meth:`~ServingEngine.retire`, …).

The template is *online*: requests join through :meth:`ServingEngine.submit`
at any simulated time and the clock advances one iteration per
:meth:`ServingEngine.step`.  Offline trace replay (the legacy
``engine.run(trace)`` path) is a thin adapter — submit everything, then
:meth:`ServingEngine.run_until_drained` — so replay and live submission
share every line of scheduling code and produce identical results.

Time lives in the :mod:`repro.sim` kernel: the engine's clock is a
:class:`~repro.sim.SimClock`, not-yet-arrived submissions are
:class:`~repro.sim.Arrival` events in an :class:`~repro.sim.EventQueue`,
and idle gaps are *skipped* — the clock jumps straight to the next
event in O(log n) instead of grinding through empty iterations.  Setting
``EngineConfig.idle_quantum_s`` bounds each idle jump to a fixed quantum
(the naive activity-scanning simulator); records are identical either
way, which is what the kernel determinism tests pin down.  Executed
iterations are published as :class:`~repro.sim.IterationDone` events
through :attr:`ServingEngine.on_event` so outer layers (the cluster
kernel journal, benchmarks) can observe the timeline without reaching
into engine internals.

Engines register themselves in the string-keyed :data:`ENGINES` registry
(via :func:`register_engine`) so the CLI, benchmarks, router, and the
:class:`~repro.serving.gateway.ServingGateway` can construct any engine —
including future ones — by name through :func:`create_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from ..hardware.cluster import GPUNode
from ..sim import (Arrival, Cancel, Event, EventQueue, IterationDone,
                   PhaseTransition, new_clock)
from ..workload.spec import Trace, TraceRequest
from .metrics import EngineStats, ServingResult
from .model_manager import ArtifactKind, ModelManager
from .request import RequestState, ServingRequest
from .scheduler import SchedulerConfig
from .streaming_metrics import RecordPolicy, StreamingMetrics

__all__ = [
    "WORKSPACE_FRACTION", "PREEMPT_SWAP_S", "FULL_MODEL_LOADER_FACTOR",
    "KV_RESERVE_FRACTION", "EngineConfig", "TimelineEvent", "Admission",
    "ServingEngine", "ENGINES", "register_engine", "create_engine",
]

# Shared memory/timing constants (previously duplicated privately between
# engine.py and baselines.py).
WORKSPACE_FRACTION = 0.08    # activations, CUDA context, fragmentation
PREEMPT_SWAP_S = 5e-3        # KV swap-out/in cost per preemption
# standard checkpoint loaders (deserialize + per-tensor copies) move whole
# FP16 models far below raw link bandwidth; compressed deltas use the packed
# raw-buffer path and do not pay this
FULL_MODEL_LOADER_FACTOR = 4.0
KV_RESERVE_FRACTION = 0.3    # SCB reserves a fixed KV share like vLLM


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (scheduler limits live in SchedulerConfig).

    ``preempt_mode`` explores §5.4's open question: "swap" parks a
    preempted request's KV state in CPU memory and resumes by decoding
    (paying a fixed swap cost per preemption); "recompute" discards the KV
    state for free but must re-prefill the full context at resume time.

    ``idle_quantum_s`` selects the simulator's idle-time strategy: None
    (default) is event-driven — the clock jumps over idle gaps straight
    to the next scheduled event; a positive value bounds every idle jump
    to that quantum, i.e. the classic activity-scanning loop that steps
    through dead time.  Request records are identical in both modes (the
    quantum only subdivides jumps, never overshoots an event); the knob
    exists so benchmarks and the kernel determinism tests can price
    idle-skip against the dense baseline.

    ``record_policy`` selects how much per-request state survives
    retirement (see :class:`~repro.serving.streaming_metrics.RecordPolicy`):
    ``keep_all`` (default) keeps every request object and record exactly
    as before; ``sample_k`` keeps a deterministic reservoir of
    ``sample_k`` records; ``drop`` keeps none.  Under the latter two the
    engine releases terminal requests, so live memory is O(active) —
    aggregates come from the streaming sketches instead, within their
    documented relative error.

    ``prefix_cache`` enables the engine's radix prefix/KV cache (see
    :mod:`repro.serving.prefix_cache`): repeat turns of a conversation
    skip re-prefilling their cached prefix, and the block pool is
    charged against the same KV-token budget as running requests.  Off
    (the default) the engine takes the exact pre-existing code path —
    records are bit-identical to a build without the feature.
    ``prefix_block_tokens`` is the KV block granularity of that cache.
    """

    tp_degree: int = 4
    variant_kind: str = "delta"      # "delta" | "lora" | "none"
    delta_bits: int = 4
    delta_density: float = 0.5
    lora_rank: int = 16
    sbmm_impl: str = "sbmm"
    lossless_decompress_gbps: Optional[float] = None
    preempt_mode: str = "swap"       # "swap" | "recompute"
    max_sim_seconds: float = 36000.0
    idle_quantum_s: Optional[float] = None
    record_policy: RecordPolicy = RecordPolicy.KEEP_ALL
    sample_k: int = 1024
    prefix_cache: bool = False
    prefix_block_tokens: int = 32

    def __post_init__(self):
        if self.preempt_mode not in ("swap", "recompute"):
            raise ValueError(f"unknown preempt_mode {self.preempt_mode!r}")
        if self.variant_kind not in ("delta", "lora", "none"):
            raise ValueError(f"unknown variant_kind {self.variant_kind!r}")
        if self.idle_quantum_s is not None and self.idle_quantum_s <= 0:
            raise ValueError("idle_quantum_s must be > 0 when set")
        if not isinstance(self.record_policy, RecordPolicy):
            # accept the plain string spelling ("drop", "sample_k", ...)
            object.__setattr__(self, "record_policy",
                               RecordPolicy(self.record_policy))
        if self.sample_k < 1:
            raise ValueError("sample_k must be >= 1")
        if self.prefix_block_tokens < 1:
            raise ValueError("prefix_block_tokens must be >= 1")


@dataclass
class TimelineEvent:
    """Per-request phase spans for the Fig 16 breakdown."""

    request_id: int
    model_id: str
    arrival_s: float
    queue_until_s: float
    loading_until_s: float
    finish_s: float


@dataclass
class Admission:
    """What one engine iteration admits, and the load time it paid."""

    admitted: List[ServingRequest] = field(default_factory=list)
    load_time_s: float = 0.0


# callback signatures: (request, clock_s)
TokenCallback = Callable[[ServingRequest, float], None]
FinishCallback = Callable[[ServingRequest, float], None]
#: cross-layer instrumentation: typed sim events (IterationDone, ...)
EventCallback = Callable[[Event], None]


class ServingEngine:
    """Template-method base for every discrete-event serving engine.

    Subclasses override the hooks marked "hook:" below; the iteration
    loop itself — arrival ingestion, admitted-request bookkeeping, clock
    advance, token accounting, retirement — lives only here.

    Online protocol::

        engine.submit(TraceRequest(...))   # any time, any arrival_s
        engine.step()                      # one scheduling iteration
        engine.run_until_drained()         # loop until idle / time limit
        engine.build_result()              # ServingResult so far

    Offline replay (``run(trace)``) is submit-everything + drain, so the
    two paths are the same code and produce identical records.
    """

    name: str = "abstract"
    #: how the CLI/benchmarks should register trace variants for this engine
    variant_artifact: str = ArtifactKind.DELTA
    #: whether build_result attaches the EngineStats counters
    include_stats: bool = False

    def __init__(self, manager: ModelManager, node: GPUNode,
                 engine_config: EngineConfig = EngineConfig()):
        self.manager = manager
        self.node = node
        self.config = engine_config
        self.collect_timeline = False
        self.on_token: Optional[TokenCallback] = None
        self.on_finish: Optional[FinishCallback] = None
        self.on_event: Optional[EventCallback] = None
        # telemetry wiring (not state — survives reset): when True and
        # on_event is set, the engine publishes PhaseTransition events so
        # a span recorder can assemble request lifecycles.  Off by
        # default: the disabled path constructs no events at all.
        self.emit_phases: bool = False
        self.reset()

    # ------------------------------------------------------------------ #
    # registry construction protocol
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, manager: ModelManager, node: GPUNode,
              scheduler_config: Optional[SchedulerConfig] = None,
              engine_config: Optional[EngineConfig] = None,
              **kwargs) -> "ServingEngine":
        """Uniform constructor used by :func:`create_engine`.

        Engines that have no scheduler of their own map the relevant
        ``SchedulerConfig`` fields onto their keyword arguments.
        """
        raise NotImplementedError

    @classmethod
    def register_variant(cls, manager: ModelManager, model_id: str,
                         base_model_id: str, ratio: float,
                         config=None) -> None:
        """Register a variant the way this engine consumes it.

        Delta engines size the artifact from its compression ``ratio``;
        full-model engines (the baselines) swap whole FP16 checkpoints.
        """
        if cls.variant_artifact == ArtifactKind.DELTA:
            manager.register_delta(model_id, base_model_id, ratio,
                                   config=config)
        else:
            manager.register_full(model_id, base_model_id)

    # ------------------------------------------------------------------ #
    # online protocol
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear all serving state (a fresh simulated timeline)."""
        self._sim = new_clock()           # SanitizedClock when enabled
        self._pending = EventQueue()      # Arrival events on the sim clock
        self._cancels = EventQueue()      # scheduled Cancel events
        self._live: Dict[int, ServingRequest] = {}
        self._n_submitted = 0
        self._n_retired = 0
        self.running: List[ServingRequest] = []
        self.finished: List[ServingRequest] = []
        self.timeline: List[TimelineEvent] = []
        self.stats = EngineStats()
        # retire-time streaming sink: sketches/counters always on, record
        # retention per policy; under SAMPLE_K/DROP terminal requests are
        # released (finished stays empty, _live is popped) → O(active)
        self._keep_requests = \
            self.config.record_policy is RecordPolicy.KEEP_ALL
        self.metrics = StreamingMetrics(policy=self.config.record_policy,
                                        sample_k=self.config.sample_k)
        self._reset_engine()

    @property
    def clock(self) -> float:
        """This engine's simulated time (a :class:`~repro.sim.SimClock`)."""
        return self._sim.now

    @clock.setter
    def clock(self, value: float) -> None:
        # outer layers legitimately re-seat an idle engine's timeline
        # (replica spawn at the cluster frontier, admission-floor bumps)
        self._sim.reseat(value)

    def submit(self, request: TraceRequest) -> ServingRequest:
        """Enqueue one request; it joins the queue once the clock reaches
        its ``arrival_s`` (which may be in the past: it joins immediately,
        at the next :meth:`step`).  A request carrying a ``deadline_s``
        schedules its own expiry as a :class:`~repro.sim.Cancel` event."""
        req = ServingRequest(trace=request)
        self._pending.push(Arrival(time=request.arrival_s, request=req))
        self._n_submitted += 1
        self._live[request.request_id] = req
        if request.deadline_s is not None:
            self.schedule_cancel(request.request_id, request.deadline_s,
                                 reason="deadline")
        return req

    def lookup(self, request_id: int) -> Optional[ServingRequest]:
        """The live (or terminal) serving state of a submitted request."""
        return self._live.get(request_id)

    def schedule_cancel(self, request_id: int, at_s: float,
                        reason: str = "cancel") -> None:
        """Schedule a cancellation at simulated time ``at_s``.

        The cancel applies at the first iteration boundary at or after
        ``at_s`` (an in-flight iteration always completes); idle engines
        wake at ``at_s`` exactly, so application time is deterministic
        and identical across idle-skip modes.  A cancel whose target has
        already finished is stale and ignored.
        """
        self._cancels.push(Cancel(time=float(at_s), request_id=request_id,
                                  reason=reason))

    def abort(self, request_id: int,
              reason: str = "cancel") -> Optional[ServingRequest]:
        """Remove a request *now* (at the current clock), wherever it is:
        mid-batch (freeing its scheduler slot and KV share), queued, or
        not yet arrived.  Only tokens actually generated are charged —
        the request's record carries ``served_tokens`` and a
        ``cancelled``/``expired`` status.  Returns the aborted request,
        or None when the id is unknown or already terminal."""
        return self._apply_cancel(request_id, reason)

    @property
    def unfinished(self) -> int:
        """Submitted requests that have not finished yet."""
        return self._n_submitted - self._n_retired

    @property
    def backlog(self) -> int:
        """Arrived-but-unfinished requests: the queue pressure an
        autoscaler should react to.  Unlike :attr:`unfinished`, requests
        replayed ahead of time with future arrivals don't count until the
        clock reaches them (an O(log n) kernel count, not a heap scan)."""
        return self.unfinished - self._pending.count_after(self.clock)

    def utilization(self) -> Dict[str, float]:
        """Instantaneous occupancy gauges for the telemetry layer.

        ``batch_occupancy`` is running requests over the scheduler's
        batch limit (0.0 when no limit is discoverable);
        ``kv_occupancy`` is engine-specific — 0.0 here, overridden by
        engines that track a KV-token budget.
        """
        cap: Optional[int] = None
        sched = getattr(self, "scheduler_config", None)
        if sched is not None:
            cap = getattr(sched, "max_batch_requests", None)
        if cap is None:
            cap = getattr(self, "max_batch_requests", None)
        batch = len(self.running) / cap if cap else 0.0
        return {"batch_occupancy": batch, "kv_occupancy": 0.0}

    def step(self) -> bool:
        """Run one scheduling iteration.

        Returns False when there is nothing left to do (no queued, running,
        or future-pending work) — the engine is drained.
        """
        self._before_step()
        # hoisted telemetry gate: None on the hot (disabled) path.  The
        # local is named `emit` deliberately — it IS the kernel publish
        # path (simlint SIM008 keys on the call name).
        emit = self.on_event if self.emit_phases and \
            self.on_event is not None else None

        # 0. due cancellations/deadline expiries apply at the boundary
        for event in self._cancels.pop_due(self.clock):
            self._apply_cancel(event.request_id, event.reason)

        # 1. arrivals up to the clock join the engine's queue
        for event in self._pending.pop_due(self.clock):
            self.on_arrival(event.request)
            if emit is not None:
                req = event.request
                emit(PhaseTransition(
                    time=req.arrival_s, request_id=req.request_id,
                    phase="queue", model_id=req.model_id,
                    tenant_id=req.tenant_id, source=self.name))

        if not self.running and not self.has_queued():
            wake = self._next_wake()
            if wake is None:
                return False
            # idle-skip: jump to the next scheduled arrival or cancel
            # (bounded to a quantum when dense activity-scanning is on)
            self.clock = self._bounded_jump(max(self.clock, wake))
            return True

        # 2-3. engine-specific admission (scheduling, swaps, KV control)
        admission = self.admit()
        admitted = admission.admitted
        load_time = admission.load_time_s
        clock = self.clock
        for req in admitted:
            req.state = RequestState.RUNNING
            if req.first_scheduled_s is None:
                req.first_scheduled_s = clock
                req.queue_wait_s = clock - req.arrival_s
                if emit is not None:
                    emit(PhaseTransition(
                        time=clock, request_id=req.request_id,
                        phase="prefill", model_id=req.model_id,
                        tenant_id=req.tenant_id, source=self.name))
            req.loading_s += load_time

        # 4. execute one fused prefill+decode iteration
        cost = self.iteration_cost(admitted)
        if cost is None:
            # nothing executable: either we only paid a load, or we stall
            if load_time == 0.0:
                return self._stall()
            executed, iter_time = False, 0.0
        else:
            executed, iter_time = True, cost
        self._sim.tick(iter_time + load_time)
        if executed:
            self.on_iteration(iter_time, load_time, admitted)

        # token accounting: admitted requests first (their first token
        # lands this iteration), then the previously-running prefix of
        # ``running`` — the slice bound taken before the appends replaces
        # the old per-request membership test against an admitted-id set
        now = self._sim.now
        on_token = self.on_token
        running = self.running
        n_old = len(running)
        for req in admitted:
            req.prefilled = True
            req.generated_tokens += 1
            if req.first_token_s is None:
                req.first_token_s = now
                if emit is not None:
                    emit(PhaseTransition(
                        time=now, request_id=req.request_id,
                        phase="decode", model_id=req.model_id,
                        tenant_id=req.tenant_id, source=self.name))
            req.inference_s += iter_time
            running.append(req)
            if on_token is not None:
                on_token(req, now)
        for req in running[:n_old]:
            req.generated_tokens += 1
            req.inference_s += iter_time
            if on_token is not None:
                on_token(req, now)

        # 5. retire finished requests; engine-specific cleanup (preemption)
        newly_done: List[ServingRequest] = []
        still_running: List[ServingRequest] = []
        for req in running:
            (newly_done if req.done else still_running).append(req)
        if newly_done:
            for req in newly_done:
                req.state = RequestState.FINISHED
                req.finish_s = now
                self._retire_terminal(req)
            self.running = still_running
        self._sim.tick(self.retire(newly_done))
        if executed and self.on_event is not None:
            self.on_event(IterationDone(
                time=self.clock, iter_time_s=iter_time,
                load_time_s=load_time,
                n_running=len(self.running), n_admitted=len(admitted),
                n_finished=len(newly_done), source=self.name))

        if self.collect_timeline:
            for req in newly_done:
                self.timeline.append(TimelineEvent(
                    request_id=req.request_id, model_id=req.model_id,
                    arrival_s=req.arrival_s,
                    queue_until_s=req.first_scheduled_s,
                    loading_until_s=req.first_scheduled_s + req.loading_s,
                    finish_s=req.finish_s))
        if self.on_finish is not None:
            for req in newly_done:
                self.on_finish(req, self.clock)
        return True

    def run_until_drained(self) -> None:
        """Step until every submitted request finished (or the engine is
        stuck / past ``max_sim_seconds``)."""
        while self.unfinished > 0 and self.clock < self.config.max_sim_seconds:
            if not self.step():
                break

    def build_result(self) -> ServingResult:
        """Snapshot the retired requests as a :class:`ServingResult`.

        The result carries a copy of the streaming sink; under
        ``KEEP_ALL`` its record list is identical (same memoized record
        objects, same retirement order) to the pre-streaming snapshot,
        under ``SAMPLE_K``/``DROP`` the sink's sketches stand in for the
        missing records.
        """
        stream = self.metrics.copy()
        records = stream.records
        if stream.n_observed:
            # sink min/max are exact; same arithmetic as the old
            # max(finish) - min(arrival) over the record list
            makespan = stream.max_finish_s - stream.min_arrival_s
        else:
            makespan = self.clock
        result = ServingResult(
            engine=self.name, records=records,
            makespan_s=max(makespan, 1e-9),
            stats=self.stats if self.include_stats else None,
            config=self.result_config(), stream=stream)
        if self.collect_timeline:
            result.config["timeline"] = list(self.timeline)
        return result

    # ------------------------------------------------------------------ #
    # offline replay (the legacy entry point)
    # ------------------------------------------------------------------ #
    def run(self, trace: Trace, collect_timeline: bool = False) -> ServingResult:
        """Replay a pre-materialized trace: submit everything, drain."""
        self.reset()
        self.collect_timeline = collect_timeline
        for t in trace:
            self.submit(t)
        self.run_until_drained()
        return self.build_result()

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def _reset_engine(self) -> None:
        """hook: clear engine-specific state (queues, residency, caches)."""

    def _before_step(self) -> None:
        """hook: runs before arrival ingestion (e.g. warm-up staging)."""

    def on_arrival(self, request: ServingRequest) -> None:
        """hook: an arrived request joins the engine's queue."""
        raise NotImplementedError

    def has_queued(self) -> bool:
        """hook: is there work waiting for admission?"""
        raise NotImplementedError

    def admit(self) -> Admission:
        """hook: choose requests to admit; perform swaps; return the load
        time spent on the critical path."""
        raise NotImplementedError

    def iteration_cost(self, admitted: List[ServingRequest]) -> Optional[float]:
        """hook: compose the batch and price it; None if nothing runs."""
        raise NotImplementedError

    def on_iteration(self, iter_time: float, load_time: float,
                     admitted: List[ServingRequest]) -> None:
        """hook: per-executed-iteration telemetry (called before the
        admitted requests join ``running``)."""

    def retire(self, newly_done: List[ServingRequest]) -> float:
        """hook: post-retirement cleanup (preemption); returns extra
        seconds to advance the clock."""
        return 0.0

    def _stall_clock(self, next_arrival_s: float) -> float:
        """hook: where the clock jumps when nothing was runnable."""
        return max(self.clock, next_arrival_s)

    def _next_wake(self) -> Optional[float]:
        """The earliest scheduled event: an arrival or a *live* cancel.
        A pending deadline can therefore unwedge an engine stuck on an
        inadmissible request — its expiry frees the queue slot.  Stale
        cancels (target already terminal) are discarded here rather than
        waited on: jumping an idle clock to a dead event's time would
        perturb the frontier for no simulated effect."""
        while self._cancels:
            event = self._cancels.peek()
            target = self._live.get(event.request_id)
            if target is not None and not target.terminal:
                break
            self._cancels.pop()
        times = [q.peek_time() for q in (self._pending, self._cancels) if q]
        return min(times) if times else None

    def _stall(self) -> bool:
        wake = self._next_wake()
        if wake is not None:
            self.clock = self._bounded_jump(self._stall_clock(wake))
            return True
        return False

    def _bounded_jump(self, target: float) -> float:
        """An idle jump to ``target``, quantized when dense stepping is
        on.  The quantum subdivides the gap but never overshoots the
        target, so both modes ingest every arrival at the same clock."""
        quantum = self.config.idle_quantum_s
        if quantum is None:
            return target
        return min(target, self.clock + quantum)

    def result_config(self) -> Dict[str, object]:
        """hook: the ``config`` dict attached to results."""
        return {"tp_degree": self.config.tp_degree}

    def remove_queued(self, request_id: int) -> Optional[ServingRequest]:
        """hook: withdraw a request from the engine's admission queue
        (returns it), or None when it is not queued there."""
        return None

    # ------------------------------------------------------------------ #
    # retirement
    # ------------------------------------------------------------------ #
    def _retire_terminal(self, req: ServingRequest) -> None:
        """Account one terminal request: fold its record into the
        streaming sink, then either keep the request object (KEEP_ALL)
        or release it (SAMPLE_K/DROP) so live state stays O(active).
        The memoized record is the same object the gateway finish hooks
        will see.  A released request drops out of :meth:`lookup`; late
        cancels against it are discarded as stale, exactly like cancels
        against a kept-but-terminal request."""
        self._n_retired += 1
        self.metrics.observe(req.record())
        if self.emit_phases and self.on_event is not None:
            self.on_event(PhaseTransition(
                time=req.finish_s, request_id=req.request_id,
                phase="retire", model_id=req.model_id,
                tenant_id=req.tenant_id, status=req.state.value,
                source=self.name))
        if self._keep_requests:
            self.finished.append(req)
        else:
            self._live.pop(req.request_id, None)

    # ------------------------------------------------------------------ #
    # cancellation mechanics
    # ------------------------------------------------------------------ #
    def _apply_cancel(self, request_id: int,
                      reason: str) -> Optional[ServingRequest]:
        req = self._live.get(request_id)
        if req is None or req.terminal:
            return None              # unknown or stale: already terminal
        was_running = any(r is req for r in self.running)
        if was_running:
            # frees the batch slot and the KV share immediately: the next
            # admit() sees one fewer running request
            self.running = [r for r in self.running if r is not req]
        elif self.remove_queued(request_id) is None:
            # not queued either: still a pending (future) arrival
            self._pending.remove_request(request_id)
        req.state = RequestState.EXPIRED if reason == "deadline" \
            else RequestState.CANCELLED
        req.finish_s = max(self.clock, req.arrival_s)
        self._retire_terminal(req)
        self.stats.aborts += 1
        if self.on_event is not None:
            self.on_event(Cancel(time=req.finish_s, request_id=request_id,
                                 reason=reason))
        if self.on_finish is not None:
            self.on_finish(req, self.clock)
        return req


# ------------------------------------------------------------------ #
# registry
# ------------------------------------------------------------------ #
ENGINES: Dict[str, Type[ServingEngine]] = {}


def register_engine(cls: Type[ServingEngine]) -> Type[ServingEngine]:
    """Class decorator: make an engine constructible by name."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"engine class {cls.__name__} needs a name")
    if cls.name in ENGINES:
        raise ValueError(f"duplicate engine name {cls.name!r}")
    ENGINES[cls.name] = cls
    return cls


def create_engine(name: str, manager: ModelManager, node: GPUNode,
                  scheduler_config: Optional[SchedulerConfig] = None,
                  engine_config: Optional[EngineConfig] = None,
                  **kwargs) -> ServingEngine:
    """Construct a registered engine by name with uniform arguments."""
    if name not in ENGINES:
        raise KeyError(f"unknown engine {name!r}; "
                       f"registered: {sorted(ENGINES)}")
    return ENGINES[name].build(manager, node,
                               scheduler_config=scheduler_config,
                               engine_config=engine_config, **kwargs)
