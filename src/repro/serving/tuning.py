"""Offline profiling to pick N, the number of concurrent deltas (§5.4, Fig 10).

Runs a short profiling trace through the engine for each candidate N and
returns the mean-time-per-token curve; the operator deploys the argmin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.cluster import GPUNode
from ..workload.generators import trace_from_distribution
from ..workload.spec import Trace
from .engine import DeltaZipEngine, EngineConfig
from .model_manager import ModelManager
from .scheduler import SchedulerConfig

__all__ = ["ProfilePoint", "profile_concurrent_deltas", "pick_optimal_n"]


@dataclass(frozen=True)
class ProfilePoint:
    """One (N, performance) sample of the Fig 10 sweep."""

    n_deltas: int
    mean_time_per_token_s: float
    mean_e2e_s: float
    throughput_rps: float


def profile_concurrent_deltas(
    manager: ModelManager,
    node: GPUNode,
    trace: Trace,
    candidate_n: Sequence[int],
    engine_config: EngineConfig = EngineConfig(),
    max_batch_requests: int = 32,
) -> List[ProfilePoint]:
    """Run the profiling trace once per candidate N."""
    points = []
    for n in candidate_n:
        engine = DeltaZipEngine(
            manager, node,
            SchedulerConfig(max_batch_requests=max_batch_requests,
                            max_concurrent_deltas=n),
            engine_config)
        result = engine.run(trace)
        points.append(ProfilePoint(
            n_deltas=n,
            mean_time_per_token_s=result.mean_time_per_token_s(),
            mean_e2e_s=result.mean_e2e_latency_s(),
            throughput_rps=result.throughput_rps()))
    return points


def pick_optimal_n(points: Sequence[ProfilePoint]) -> int:
    """Argmin of mean time per token — the paper's selection rule."""
    if not points:
        raise ValueError("no profile points")
    best = min(points, key=lambda p: p.mean_time_per_token_s)
    return best.n_deltas
