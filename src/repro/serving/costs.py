"""Iteration cost model: batch composition → seconds (decoupled serving).

Implements the timing consequences of §5.1-§5.3:

* the **base** pass runs one dense FP16 GEMM per linear over the *whole*
  batch (all variants of the same base batch together);
* the **delta** pass runs SBMM — low-precision sparse grouped matmuls —
  in parallel with the base pass (per-layer time is the max of the two,
  the decoupling of Eq. 2);
* tensor parallelism splits every GEMM's output dimension ``1/tp`` and adds
  two ring all-reduces of the activations per layer (Fig 9);
* attention adds KV-cache traffic, which is what makes decode memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.cluster import allreduce_time
from ..hardware.kernels import (GemmShape, dense_gemm_time,
                                quantized_gemm_time, sbmm_time,
                                sparse_quantized_gemm_time)
# the scalar kernel models in hardware.kernels stay the ground truth; the
# vectorized fast paths below reuse their private constants so the two can
# never drift apart (equivalence is pinned by test_streaming_metrics)
from ..hardware.kernels import (_RANDOM_ACCESS_US_PER_REQUEST,
                                _SCATTERED_BW_FRACTION, _SMALL_M_KNEE,
                                _sbmm_parallelism)
from ..hardware.specs import GPUSpec
from .models import FP16, ServedModelSpec

__all__ = ["IterationCostModel", "BatchComposition"]

# fixed per-iteration software overhead (scheduler, python, launch queue)
_ITERATION_OVERHEAD_S = 2e-3
# LoRA adapters multiply two rank-r matrices per projection
_LORA_KERNEL_EFFICIENCY = 0.5
# bounded memo caches for the per-iteration pass costs; cleared when full
# so pathological workloads cannot grow them without bound
_MEMO_LIMIT = 65536


@dataclass
class BatchComposition:
    """What one engine iteration executes.

    ``decode_per_delta`` maps variant-id -> number of decoding requests this
    iteration; ``prefill_tokens_per_delta`` maps variant-id -> total prompt
    tokens entering prefill; ``context_tokens`` is the sum of context
    lengths across decoding requests (KV traffic).
    """

    decode_per_delta: Dict[str, int]
    prefill_tokens_per_delta: Dict[str, int]
    context_tokens: int = 0

    @property
    def decode_requests(self) -> int:
        return sum(self.decode_per_delta.values())

    @property
    def prefill_tokens(self) -> int:
        return sum(self.prefill_tokens_per_delta.values())

    @property
    def empty(self) -> bool:
        return self.decode_requests == 0 and self.prefill_tokens == 0


class IterationCostModel:
    """Times one continuous-batching iteration for a given engine flavour."""

    def __init__(self, spec: ServedModelSpec, gpu: GPUSpec,
                 tp_degree: int = 1, delta_bits: int = 4,
                 delta_density: float = 0.5, lora_rank: int = 0,
                 sbmm_impl: str = "sbmm"):
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        self.spec = spec
        self.gpu = gpu
        self.tp = tp_degree
        self.delta_bits = delta_bits
        self.delta_density = delta_density
        self.lora_rank = lora_rank
        self.sbmm_impl = sbmm_impl
        # per-layer GEMM shapes with the TP split applied once (the inner
        # loops below are the engine's single hottest code path)
        self._shape_pairs: List[Tuple[int, int]] = \
            [(k, n // self.tp) for k, n in spec.layer_gemm_shapes()]
        self._ks = np.array([k for k, _ in self._shape_pairs],
                            dtype=np.float64)
        self._ns = np.array([n for _, n in self._shape_pairs],
                            dtype=np.float64)
        self._kns = self._ks * self._ns        # exact: integer products
        self._kn_list = self._kns.tolist()
        self._base_memo: Dict[int, float] = {}
        self._delta_memo: Dict[Tuple[int, ...], float] = {}
        self._lora_memo: Dict[Tuple[int, ...], float] = {}

    # ------------------------------------------------------------------ #
    # building blocks
    #
    # The vectorized passes reproduce hardware.kernels bit-for-bit: every
    # elementwise term keeps the scalar models' operand grouping (all
    # products of integers are exact in float64, so regrouping them is
    # lossless), and reductions accumulate sequentially in the scalar
    # call order.  test_streaming_metrics pins exact equality.
    # ------------------------------------------------------------------ #
    def _base_pass(self, m: int) -> float:
        """Dense FP16 pass over ``m`` token-rows (whole shared-base batch)."""
        if m == 0:
            return 0.0
        cached = self._base_memo.get(m)
        if cached is not None:
            return cached
        gpu = self.gpu
        fill = min(1.0, m / _SMALL_M_KNEE)
        eff = gpu.mma_efficiency * (0.15 + 0.85 * fill)
        compute = (2.0 * m) * self._kns / (gpu.peak_flops * eff)
        weight = self._kns * 16.0 / 8.0
        act = (m * self._ks + m * self._ns) * 2.0
        mem = (weight + act) / gpu.hbm_bytes_per_s
        per_shape = np.maximum(compute, mem) + gpu.kernel_launch_us * 1e-6
        total = 0.0
        for t in per_shape.tolist():
            total += t
        total = total * self.spec.n_layers + self._lm_head(m)
        if len(self._base_memo) >= _MEMO_LIMIT:
            self._base_memo.clear()
        self._base_memo[m] = total
        return total

    def _lm_head(self, m: int) -> float:
        return dense_gemm_time(
            GemmShape(m, self.spec.dim, self.spec.vocab_size // self.tp),
            self.gpu)

    def _sbmm_breakdown(self, counts: List[int], carr: np.ndarray,
                        k: int, n: int, kn: float, weight_bits: float,
                        density: float, impl: str) -> Tuple[float, float]:
        """(total, compute) of one batched multi-delta matmul — the
        vectorized twin of :func:`~repro.hardware.kernels.sbmm_time`."""
        gpu = self.gpu
        if impl == "fp16_bmm":
            # per-request stacked BMM has no per-delta vector dimension;
            # keep the (rarely hot) scalar model authoritative
            br = sbmm_time(counts, k, n, gpu, impl=impl,
                           weight_bits=int(weight_bits), density=density)
            return br.total, br.compute
        dense = impl.startswith("fp16")
        scattered = impl.endswith("forloop")
        fill = np.minimum(1.0, carr / _SMALL_M_KNEE)
        eff = gpu.mma_efficiency * (0.15 + 0.85 * fill)
        peak = gpu.peak_flops if dense \
            else gpu.peak_flops * gpu.sparse_speedup
        comp = (2.0 * carr) * kn / (peak * eff)
        per_value = 16.0 if dense \
            else weight_bits * density + 2.0 * density
        weight = kn * per_value / 8.0
        act = (carr * k + carr * n) * 2.0
        if scattered:
            act = act / _SCATTERED_BW_FRACTION
        mem = (weight + act) / gpu.hbm_bytes_per_s
        per_list = np.maximum(comp, mem).tolist()
        compute = 0.0
        for t in per_list:
            compute += t
        launch = gpu.kernel_launch_us * 1e-6
        d = len(per_list)
        if impl == "sbmm":
            overlapped = max(per_list) + gpu.dynamic_launch_us * 1e-6 * d
            total = launch + max(overlapped,
                                 compute / _sbmm_parallelism(gpu, d))
        elif impl == "sbmm_reorder":
            total = compute + launch * d
        else:  # fp16_forloop / naive_forloop
            gather = _RANDOM_ACCESS_US_PER_REQUEST * 1e-6 * sum(counts)
            total = compute + launch * d + gather
        return total, compute

    def _delta_pass(self, rows_per_delta: Sequence[int]) -> float:
        """SBMM pass: grouped sparse low-precision matmuls per linear."""
        counts = [c for c in rows_per_delta if c > 0]
        if not counts:
            return 0.0
        key = tuple(counts)
        cached = self._delta_memo.get(key)
        if cached is not None:
            return cached
        carr = np.array(counts, dtype=np.float64)
        bits = float(self.delta_bits)
        total = 0.0
        for (k, n), kn in zip(self._shape_pairs, self._kn_list):
            t, _ = self._sbmm_breakdown(counts, carr, k, n, kn, bits,
                                        self.delta_density, self.sbmm_impl)
            total += t
        total = total * self.spec.n_layers
        if len(self._delta_memo) >= _MEMO_LIMIT:
            self._delta_memo.clear()
        self._delta_memo[key] = total
        return total

    def _lora_pass(self, rows_per_adapter: Sequence[int]) -> float:
        """Punica-style batched adapter matmuls.

        Each projection applies two rank-r GEMMs (shrink then expand), but
        Punica's SGMV kernel fuses them into one launch — so the second
        GEMM contributes compute only.
        """
        counts = [c for c in rows_per_adapter if c > 0]
        if not counts or self.lora_rank <= 0:
            return 0.0
        key = tuple(counts)
        cached = self._lora_memo.get(key)
        if cached is not None:
            return cached
        r = self.lora_rank
        carr = np.array(counts, dtype=np.float64)
        total = 0.0
        for k, n in self._shape_pairs:
            down_total, _ = self._sbmm_breakdown(
                counts, carr, k, r, float(k * r), 16.0, 1.0, "sbmm")
            _, up_compute = self._sbmm_breakdown(
                counts, carr, r, n, float(r * n), 16.0, 1.0, "sbmm")
            total += (down_total + up_compute) \
                / _LORA_KERNEL_EFFICIENCY * 0.5
        total = total * self.spec.n_layers
        if len(self._lora_memo) >= _MEMO_LIMIT:
            self._lora_memo.clear()
        self._lora_memo[key] = total
        return total

    def _attention(self, context_tokens: int, new_tokens: int) -> float:
        """KV-cache read/write traffic (memory-bound decode attention)."""
        kv_read = context_tokens * self.spec.kv_bytes_per_token() / self.tp
        kv_write = new_tokens * self.spec.kv_bytes_per_token() / self.tp
        return (kv_read + kv_write) / self.gpu.hbm_bytes_per_s

    def _allreduce(self, m: int) -> float:
        if self.tp == 1 or m == 0:
            return 0.0
        per_layer = 2 * allreduce_time(m * self.spec.dim * FP16, self.tp,
                                       self.gpu)
        return per_layer * self.spec.n_layers

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def iteration_time(self, batch: BatchComposition,
                       variant_kind: str = "delta") -> float:
        """Seconds for one iteration of the decoupled engine.

        ``variant_kind``: "delta" (compressed FMT), "lora", or "none"
        (requests all target the base model).
        """
        if batch.empty:
            return 0.0
        m_decode = batch.decode_requests
        m_prefill = batch.prefill_tokens
        m_total = m_decode + m_prefill

        base = self._base_pass(m_total)
        rows = []
        # sorted: set order is hash-randomized across processes, and the
        # row order feeds non-associative float sums in the variant pass
        for delta_id in sorted(set(batch.decode_per_delta) |
                               set(batch.prefill_tokens_per_delta)):
            rows.append(batch.decode_per_delta.get(delta_id, 0)
                        + batch.prefill_tokens_per_delta.get(delta_id, 0))
        if variant_kind == "delta":
            variant = self._delta_pass(rows)
        elif variant_kind == "lora":
            variant = self._lora_pass(rows)
        elif variant_kind == "none":
            variant = 0.0
        else:
            raise ValueError(f"unknown variant kind {variant_kind!r}")

        # decoupled: base GEMM and variant matmuls execute in parallel
        linear = max(base, variant)
        attn = self._attention(batch.context_tokens, m_total)
        return linear + attn + self._allreduce(m_total) + _ITERATION_OVERHEAD_S

    def fullmodel_iteration_time(
        self,
        rows_per_model: Dict[str, int],
        context_tokens: int,
        prefill_tokens_per_model: Optional[Dict[str, int]] = None,
    ) -> float:
        """vLLM-SCB baseline: loop over resident models, dense pass each.

        Batches within a model, but each model's pass is a separate series
        of dense kernels (no cross-model batching).
        """
        prefill = prefill_tokens_per_model or {}
        models = set(rows_per_model) | set(prefill)
        if not models:
            return 0.0
        total = 0.0
        any_rows = False
        # sorted: set order is hash-randomized across processes, and the
        # per-model pass times feed a non-associative float sum
        for model_id in sorted(models):
            m = rows_per_model.get(model_id, 0) + prefill.get(model_id, 0)
            if m == 0:
                continue
            any_rows = True
            total += self._base_pass(m)
            total += self._allreduce(m)
        if not any_rows:
            return 0.0
        new_tokens = sum(rows_per_model.values()) + sum(prefill.values())
        total += self._attention(context_tokens, new_tokens)
        return total + _ITERATION_OVERHEAD_S
