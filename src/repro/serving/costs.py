"""Iteration cost model: batch composition → seconds (decoupled serving).

Implements the timing consequences of §5.1-§5.3:

* the **base** pass runs one dense FP16 GEMM per linear over the *whole*
  batch (all variants of the same base batch together);
* the **delta** pass runs SBMM — low-precision sparse grouped matmuls —
  in parallel with the base pass (per-layer time is the max of the two,
  the decoupling of Eq. 2);
* tensor parallelism splits every GEMM's output dimension ``1/tp`` and adds
  two ring all-reduces of the activations per layer (Fig 9);
* attention adds KV-cache traffic, which is what makes decode memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..hardware.cluster import allreduce_time
from ..hardware.kernels import (GemmShape, dense_gemm_time,
                                quantized_gemm_time, sbmm_time,
                                sparse_quantized_gemm_time)
from ..hardware.specs import GPUSpec
from .models import FP16, ServedModelSpec

__all__ = ["IterationCostModel", "BatchComposition"]

# fixed per-iteration software overhead (scheduler, python, launch queue)
_ITERATION_OVERHEAD_S = 2e-3
# LoRA adapters multiply two rank-r matrices per projection
_LORA_KERNEL_EFFICIENCY = 0.5


@dataclass
class BatchComposition:
    """What one engine iteration executes.

    ``decode_per_delta`` maps variant-id -> number of decoding requests this
    iteration; ``prefill_tokens_per_delta`` maps variant-id -> total prompt
    tokens entering prefill; ``context_tokens`` is the sum of context
    lengths across decoding requests (KV traffic).
    """

    decode_per_delta: Dict[str, int]
    prefill_tokens_per_delta: Dict[str, int]
    context_tokens: int = 0

    @property
    def decode_requests(self) -> int:
        return sum(self.decode_per_delta.values())

    @property
    def prefill_tokens(self) -> int:
        return sum(self.prefill_tokens_per_delta.values())

    @property
    def empty(self) -> bool:
        return self.decode_requests == 0 and self.prefill_tokens == 0


class IterationCostModel:
    """Times one continuous-batching iteration for a given engine flavour."""

    def __init__(self, spec: ServedModelSpec, gpu: GPUSpec,
                 tp_degree: int = 1, delta_bits: int = 4,
                 delta_density: float = 0.5, lora_rank: int = 0,
                 sbmm_impl: str = "sbmm"):
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        self.spec = spec
        self.gpu = gpu
        self.tp = tp_degree
        self.delta_bits = delta_bits
        self.delta_density = delta_density
        self.lora_rank = lora_rank
        self.sbmm_impl = sbmm_impl

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def _base_pass(self, m: int) -> float:
        """Dense FP16 pass over ``m`` token-rows (whole shared-base batch)."""
        if m == 0:
            return 0.0
        total = 0.0
        for k, n in self.spec.layer_gemm_shapes():
            total += dense_gemm_time(GemmShape(m, k, n // self.tp), self.gpu)
        return total * self.spec.n_layers + self._lm_head(m)

    def _lm_head(self, m: int) -> float:
        return dense_gemm_time(
            GemmShape(m, self.spec.dim, self.spec.vocab_size // self.tp),
            self.gpu)

    def _delta_pass(self, rows_per_delta: Sequence[int]) -> float:
        """SBMM pass: grouped sparse low-precision matmuls per linear."""
        counts = [c for c in rows_per_delta if c > 0]
        if not counts:
            return 0.0
        total = 0.0
        for k, n in self.spec.layer_gemm_shapes():
            total += sbmm_time(counts, k, n // self.tp, self.gpu,
                               impl=self.sbmm_impl, weight_bits=self.delta_bits,
                               density=self.delta_density).total
        return total * self.spec.n_layers

    def _lora_pass(self, rows_per_adapter: Sequence[int]) -> float:
        """Punica-style batched adapter matmuls.

        Each projection applies two rank-r GEMMs (shrink then expand), but
        Punica's SGMV kernel fuses them into one launch — so the second
        GEMM contributes compute only.
        """
        counts = [c for c in rows_per_adapter if c > 0]
        if not counts or self.lora_rank <= 0:
            return 0.0
        r = self.lora_rank
        total = 0.0
        for k, n in self.spec.layer_gemm_shapes():
            down = sbmm_time(counts, k, r, self.gpu, impl="sbmm",
                             weight_bits=16, density=1.0)
            up = sbmm_time(counts, r, n // self.tp, self.gpu, impl="sbmm",
                           weight_bits=16, density=1.0)
            total += (down.total + up.compute) / _LORA_KERNEL_EFFICIENCY * 0.5
        return total * self.spec.n_layers

    def _attention(self, context_tokens: int, new_tokens: int) -> float:
        """KV-cache read/write traffic (memory-bound decode attention)."""
        kv_read = context_tokens * self.spec.kv_bytes_per_token() / self.tp
        kv_write = new_tokens * self.spec.kv_bytes_per_token() / self.tp
        return (kv_read + kv_write) / self.gpu.hbm_bytes_per_s

    def _allreduce(self, m: int) -> float:
        if self.tp == 1 or m == 0:
            return 0.0
        per_layer = 2 * allreduce_time(m * self.spec.dim * FP16, self.tp,
                                       self.gpu)
        return per_layer * self.spec.n_layers

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def iteration_time(self, batch: BatchComposition,
                       variant_kind: str = "delta") -> float:
        """Seconds for one iteration of the decoupled engine.

        ``variant_kind``: "delta" (compressed FMT), "lora", or "none"
        (requests all target the base model).
        """
        if batch.empty:
            return 0.0
        m_decode = batch.decode_requests
        m_prefill = batch.prefill_tokens
        m_total = m_decode + m_prefill

        base = self._base_pass(m_total)
        rows = []
        # sorted: set order is hash-randomized across processes, and the
        # row order feeds non-associative float sums in the variant pass
        for delta_id in sorted(set(batch.decode_per_delta) |
                               set(batch.prefill_tokens_per_delta)):
            rows.append(batch.decode_per_delta.get(delta_id, 0)
                        + batch.prefill_tokens_per_delta.get(delta_id, 0))
        if variant_kind == "delta":
            variant = self._delta_pass(rows)
        elif variant_kind == "lora":
            variant = self._lora_pass(rows)
        elif variant_kind == "none":
            variant = 0.0
        else:
            raise ValueError(f"unknown variant kind {variant_kind!r}")

        # decoupled: base GEMM and variant matmuls execute in parallel
        linear = max(base, variant)
        attn = self._attention(batch.context_tokens, m_total)
        return linear + attn + self._allreduce(m_total) + _ITERATION_OVERHEAD_S

    def fullmodel_iteration_time(
        self,
        rows_per_model: Dict[str, int],
        context_tokens: int,
        prefill_tokens_per_model: Optional[Dict[str, int]] = None,
    ) -> float:
        """vLLM-SCB baseline: loop over resident models, dense pass each.

        Batches within a model, but each model's pass is a separate series
        of dense kernels (no cross-model batching).
        """
        prefill = prefill_tokens_per_model or {}
        models = set(rows_per_model) | set(prefill)
        if not models:
            return 0.0
        total = 0.0
        any_rows = False
        for model_id in models:
            m = rows_per_model.get(model_id, 0) + prefill.get(model_id, 0)
            if m == 0:
                continue
            any_rows = True
            total += self._base_pass(m)
            total += self._allreduce(m)
        if not any_rows:
            return 0.0
        new_tokens = sum(rows_per_model.values()) + sum(prefill.values())
        total += self._attention(context_tokens, new_tokens)
        return total + _ITERATION_OVERHEAD_S
