"""Serving economics: the cost side of the paper's conclusion.

§8/§9: *"Compared to dedicated instances for each model, DeltaZip may be
less performant, but it is more cost-effective... one practical use case is
to pack less-popular models on a limited pool of GPUs."*  This module puts
numbers on that trade-off: GPU-hour pricing per platform, cost of a serving
deployment over a trace, and the cost/latency frontier between dedicated
per-variant GPU groups and a shared DeltaZip pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..hardware.specs import GPUSpec
from .metrics import ServingResult

__all__ = ["GPU_HOURLY_USD", "DeploymentCost", "deployment_cost",
           "compare_deployments", "cost_per_tenant"]

# on-demand cloud list prices (USD / GPU / hour), indicative
GPU_HOURLY_USD: Dict[str, float] = {
    "A800-80G": 2.2,
    "A100-80G": 2.4,
    "RTX-3090": 0.45,
}


@dataclass(frozen=True)
class DeploymentCost:
    """Cost summary of one serving run."""

    system: str
    n_gpus: int
    gpu_hours: float
    total_usd: float
    usd_per_1k_requests: float
    mean_e2e_s: float

    def row(self) -> str:
        return (f"{self.system:12s} {self.n_gpus:5d} GPUs  "
                f"{self.gpu_hours:7.2f} GPU-h  ${self.total_usd:8.2f}  "
                f"${self.usd_per_1k_requests:8.2f}/1k req  "
                f"e2e {self.mean_e2e_s:7.2f}s")


def deployment_cost(result: ServingResult, gpu: GPUSpec, n_gpus: int,
                    system: Optional[str] = None,
                    wall_seconds: Optional[float] = None) -> DeploymentCost:
    """Price a serving run: GPUs are billed for the whole makespan.

    ``wall_seconds`` overrides the billed duration (e.g. a fixed
    provisioning window rather than the measured makespan).
    """
    if gpu.name not in GPU_HOURLY_USD:
        raise KeyError(f"no price for GPU {gpu.name!r}")
    hourly = GPU_HOURLY_USD[gpu.name]
    seconds = wall_seconds if wall_seconds is not None else result.makespan_s
    gpu_hours = n_gpus * seconds / 3600.0
    total = gpu_hours * hourly
    per_1k = total / max(result.n_requests, 1) * 1000.0
    return DeploymentCost(system=system or result.engine, n_gpus=n_gpus,
                          gpu_hours=gpu_hours, total_usd=total,
                          usd_per_1k_requests=per_1k,
                          mean_e2e_s=result.mean_e2e_latency_s())


def cost_per_tenant(cost: DeploymentCost,
                    tokens_by_tenant: Mapping[str, object]
                    ) -> Dict[str, float]:
    """Split one deployment's bill across tenants by metered tokens.

    ``tokens_by_tenant`` maps tenant id to either a raw token count or a
    :class:`~repro.serving.tenancy.TenantAdmissionStats` (whose
    ``tokens_charged`` meter the admission controller maintains for
    every accepted request).  Each tenant pays in proportion to the
    tokens it pushed through the shared pool — the showback model behind
    §8's "pack less-popular models on a limited pool of GPUs" claim.
    Tenants that charged nothing owe nothing; if *no* tenant metered any
    tokens the bill is split evenly (a pool kept warm for everyone).
    """
    tokens = {tid: float(getattr(v, "tokens_charged", v))
              for tid, v in tokens_by_tenant.items()}
    if not tokens:
        return {}
    total = sum(tokens.values())
    if total <= 0:
        share = cost.total_usd / len(tokens)
        return {tid: share for tid in tokens}
    return {tid: cost.total_usd * tok / total
            for tid, tok in tokens.items()}


def compare_deployments(shared: DeploymentCost,
                        dedicated: DeploymentCost) -> Dict[str, float]:
    """Headline comparison: cost saving vs latency penalty."""
    return {
        "cost_saving_factor":
            dedicated.usd_per_1k_requests / max(shared.usd_per_1k_requests,
                                                1e-9),
        "latency_penalty_factor":
            shared.mean_e2e_s / max(dedicated.mean_e2e_s, 1e-9),
        "gpu_reduction_factor": dedicated.n_gpus / max(shared.n_gpus, 1),
    }
