"""Continuous-batching scheduler with skip-the-line and preemption (§5.4).

Per iteration the scheduler admits up to ``max_batch_requests`` requests
FCFS, spanning at most ``max_concurrent_deltas`` distinct variants.  Once a
variant is selected, *later* requests for it may jump over earlier-queued
requests of unselected variants ("skip-the-line") — that is what builds
batches despite sporadic per-variant traffic.  Each skipping request records
its *parent* (the earliest admitted request of the same variant); when the
parent finishes, its children are preempted and reinserted at their original
queue position, bounding starvation of the passed-over variants.
"""

from __future__ import annotations

from bisect import insort_right
from dataclasses import dataclass, field
from typing import Dict, Mapping, List, Optional, Sequence, Set

from .request import RequestState, ServingRequest

__all__ = ["SchedulerConfig", "SchedulingDecision", "ContinuousBatchScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of §5.4: K (batch), N (concurrent deltas), preemption policy.

    ``preempt_min_remaining`` implements the paper's §8 refinement: a
    skip-the-line request within that many tokens of finishing is *not*
    preempted when its parent completes (preempting nearly-done work only
    creates more starvation).  The engine supplies the remaining-token
    estimate — an oracle here, an output-length predictor in a real
    deployment.

    ``model_priorities`` implements §8's "prioritize models based on their
    constraints": per-variant integer priorities (higher = served first);
    admission considers the queue in (priority, arrival) order instead of
    pure FCFS.  Variants without an entry default to priority 0.
    """

    max_batch_requests: int = 32
    max_concurrent_deltas: int = 8
    preemption: bool = True
    preempt_min_remaining: int = 0
    model_priorities: Optional[Mapping[str, int]] = None

    def __post_init__(self):
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if self.max_concurrent_deltas < 1:
            raise ValueError("max_concurrent_deltas must be >= 1")
        if self.preempt_min_remaining < 0:
            raise ValueError("preempt_min_remaining must be >= 0")

    def priority_of(self, model_id: str) -> int:
        if self.model_priorities is None:
            return 0
        return self.model_priorities.get(model_id, 0)


@dataclass
class SchedulingDecision:
    """What to admit this iteration."""

    admitted: List[ServingRequest] = field(default_factory=list)
    selected_deltas: Set[str] = field(default_factory=set)
    new_deltas: List[str] = field(default_factory=list)  # need loading


class ContinuousBatchScheduler:
    """FCFS queue + per-iteration admission under (K, N) limits."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        self._queue: List[ServingRequest] = []

    # ------------------------------------------------------------------ #
    # queue maintenance
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fcfs_key(request: ServingRequest):
        # arrival-ordered FCFS; request_id only breaks simultaneous-arrival
        # ties.  Offline traces assign ids in arrival order so the two
        # coincide, but online gateway submissions may carry explicit
        # arrival times that do not follow id order.
        return (request.arrival_s, request.request_id)

    def _insert(self, request: ServingRequest) -> None:
        # the queue is maintained in FCFS order as an invariant; arrivals
        # are usually in order (append), out-of-order joins (explicit
        # arrival times, preemption reinserts) binary-insert after any
        # equal keys — identical placement to the old append+stable-sort,
        # without the O(n log n) per-add that dominated overload runs
        queue = self._queue
        if not queue or self._fcfs_key(queue[-1]) <= self._fcfs_key(request):
            queue.append(request)
        else:
            insort_right(queue, request, key=self._fcfs_key)

    def add(self, request: ServingRequest) -> None:
        request.state = RequestState.QUEUED
        self._insert(request)

    def reinsert(self, request: ServingRequest) -> None:
        """Return a preempted request to its original FCFS position."""
        request.state = RequestState.PREEMPTED
        request.parent_id = None
        self._insert(request)

    def remove(self, request_id: int) -> Optional[ServingRequest]:
        """Withdraw a queued request (cancellation); None if not queued."""
        for i, req in enumerate(self._queue):
            if req.request_id == request_id:
                return self._queue.pop(i)
        return None

    @property
    def queued(self) -> List[ServingRequest]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def schedule(self, running: Sequence[ServingRequest],
                 resident_deltas: Sequence[str]) -> SchedulingDecision:
        """Admit queued requests alongside the already-running batch.

        ``running`` requests keep their slots; their variants count toward
        N.  ``resident_deltas`` is used only to report which selected
        variants still need loading.
        """
        cfg = self.config
        decision = SchedulingDecision()
        active_deltas: Set[str] = {r.model_id for r in running}
        decision.selected_deltas = set(active_deltas)
        capacity = cfg.max_batch_requests - len(running)
        if capacity <= 0:
            return decision

        # earliest in-flight/admitted request per variant, for parent links
        parent_of: Dict[str, ServingRequest] = {}
        for req in running:
            cur = parent_of.get(req.model_id)
            if cur is None or self._fcfs_key(req) < self._fcfs_key(cur):
                parent_of[req.model_id] = req

        # admission order: FCFS, or (priority desc, arrival) when the
        # operator configured per-model priorities (§8)
        if self.config.model_priorities is None:
            order = self._queue
        else:
            order = sorted(self._queue,
                           key=lambda r: (-self.config.priority_of(r.model_id),)
                           + self._fcfs_key(r))

        blocked_seen = False
        still_queued: List[ServingRequest] = []
        for i, req in enumerate(order):
            if capacity <= 0:
                # nothing further can be admitted: keep the whole tail
                # without walking it request-by-request
                still_queued.extend(order[i:])
                break
            delta = req.model_id
            selectable = (delta in decision.selected_deltas
                          or len(decision.selected_deltas)
                          < cfg.max_concurrent_deltas)
            if not selectable:
                blocked_seen = True
                still_queued.append(req)
                continue
            # admit
            decision.selected_deltas.add(delta)
            decision.admitted.append(req)
            capacity -= 1
            if blocked_seen:
                req.skipped_line = True
                parent = parent_of.get(delta)
                if parent is not None and cfg.preemption:
                    req.parent_id = parent.request_id
            if delta not in parent_of:
                parent_of[delta] = req
        if cfg.model_priorities is not None:
            # priority order interleaves arrivals; restore FCFS.  In the
            # plain-FCFS path still_queued is a subsequence of the already
            # FCFS-ordered queue, so it is sorted by construction.
            still_queued.sort(key=self._fcfs_key)
        self._queue = still_queued

        resident = set(resident_deltas)
        decision.new_deltas = sorted(
            d for d in decision.selected_deltas if d not in resident)
        return decision

    # ------------------------------------------------------------------ #
    # preemption
    # ------------------------------------------------------------------ #
    def children_to_preempt(self, finished: ServingRequest,
                            running: Sequence[ServingRequest]) -> List[ServingRequest]:
        """Running skip-the-line requests whose parent just finished.

        Children predicted to finish within ``preempt_min_remaining``
        tokens are spared (§8's output-length-prediction refinement).
        """
        if not self.config.preemption:
            return []
        return [r for r in running
                if r.parent_id == finished.request_id and not r.done
                and r.remaining_tokens > self.config.preempt_min_remaining]
