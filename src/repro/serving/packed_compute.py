"""Compute directly on packed deltas — the fused-dequantization path.

The CUDA SBMM kernel never materializes a dense FP16 delta: it streams
packed 4/2-bit values + 2-bit sparse indices from HBM and dequantizes
inside the matmul (§5.2, "fuses dequantization for each delta").  This
module is the numpy analogue: :func:`packed_matmul` computes ``x @ Δᵀ``
from a :class:`CompressedLayer`'s packed storage, processing one
quantization group of columns at a time so peak memory stays at
``rows x group_size`` instead of the full dense matrix.

Used by :class:`PackedDeltaLinear`, a drop-in serving-side operator, and
tested for exact agreement with the dense reconstruction path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.artifacts import CompressedLayer
from ..compression.packing import unpack_codes

__all__ = ["packed_matmul", "PackedDeltaLinear"]


def _group_dequant(codes: np.ndarray, layer: CompressedLayer,
                   g_idx: int) -> np.ndarray:
    """Dequantize one column-group of codes with its (row, group) grid."""
    grid = layer.grid
    scale = grid.scale[:, g_idx][:, None]
    zero = grid.zero[:, g_idx][:, None]
    return (codes.astype(np.float32) - zero) * scale


def packed_matmul(x: np.ndarray, layer: CompressedLayer) -> np.ndarray:
    """``x @ Δᵀ`` streamed group-by-group from packed storage.

    ``x`` is (batch, in_features); returns (batch, out_features).  FP16
    layers fall back to a plain matmul.
    """
    rows, cols = layer.shape
    if x.ndim != 2 or x.shape[1] != cols:
        raise ValueError(f"x must be (batch, {cols}), got {x.shape}")
    if layer.fp16_values is not None:
        return (x @ layer.fp16_values.T).astype(np.float32)

    config = layer.config
    out = np.zeros((x.shape[0], rows), dtype=np.float32)

    if layer.packed_sparse is not None:
        packed = layer.packed_sparse
        n_groups4 = cols // packed.m
        count = rows * n_groups4 * packed.kept_per_group
        stored = unpack_codes(packed.values, packed.bits, count) \
            .reshape(rows, n_groups4, packed.kept_per_group)
        positions = unpack_codes(packed.indices, 2, count) \
            .reshape(rows, n_groups4, packed.kept_per_group)
        group_size = layer.grid.group_size
        if group_size % packed.m != 0:
            raise ValueError(
                "quantization group size must be a multiple of the "
                "sparsity group for packed compute")
        row_idx = np.arange(rows)[:, None, None]
        for start in range(0, cols, group_size):
            end = min(start + group_size, cols)
            g_idx = start // group_size
            g4_lo, g4_hi = start // packed.m, end // packed.m
            # expand this column-group's sparse block to dense codes
            offsets = (np.arange(g4_hi - g4_lo) * packed.m)[None, :, None]
            local = positions[:, g4_lo:g4_hi].astype(np.int64) + offsets
            block = np.zeros((rows, end - start), dtype=np.uint16)
            mask = np.zeros((rows, end - start), dtype=bool)
            block[row_idx, local] = stored[:, g4_lo:g4_hi]
            mask[row_idx, local] = True
            dq = _group_dequant(block, layer, g_idx)
            dq[~mask] = 0.0
            out += x[:, start:end] @ dq.T
        if layer.awq_scales is not None:
            raise ValueError("sparse layers do not carry AWQ scales")
        return out

    # dense quantized path
    codes = unpack_codes(layer.packed_dense, config.bits,
                         rows * cols).reshape(rows, cols)
    group_size = layer.grid.group_size
    for start in range(0, cols, group_size):
        end = min(start + group_size, cols)
        g_idx = start // group_size
        dq = _group_dequant(codes[:, start:end], layer, g_idx)
        if layer.awq_scales is not None:
            dq = dq / layer.awq_scales[start:end][None, :]
        out += x[:, start:end] @ dq.T
    return out


class PackedDeltaLinear:
    """Serving-side linear: base weight + packed delta, fused at apply time.

    ``forward`` computes ``x @ (W_base + Δ)ᵀ`` without ever materializing
    the dense delta, mirroring how the real kernel holds only packed bytes
    in GPU memory (the property that lets N deltas collocate, §5.1).
    """

    def __init__(self, base_weight: np.ndarray,
                 delta: Optional[CompressedLayer] = None):
        self.base_weight = base_weight.astype(np.float32)
        if delta is not None and delta.shape != base_weight.shape:
            raise ValueError(
                f"delta shape {delta.shape} != base {base_weight.shape}")
        self.delta = delta

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = x @ self.base_weight.T
        if self.delta is not None:
            y = y + packed_matmul(x, self.delta)
        return y.astype(np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
