"""Pricing KV-cache movement between disaggregated serving pools.

Disaggregated prefill/decode serving (DistServe/Splitwise-style) runs a
request's prefill on one worker and its decode on another, so the KV
blocks produced by prefill must cross the inter-worker interconnect
before decode can start.  This module is the single place that cost is
priced:

* :class:`InterconnectModel` — a latency + bandwidth link model for the
  RDMA-class NIC connecting pool workers.  It also prices ring
  all-reduces over the same fabric, which is what the multi-node
  ``sharded`` engine charges per layer for cross-node tensor
  parallelism.
* :func:`plan_kv_transfer` — turns one request's context into a
  :class:`KvTransferPlan`: how many KV token-rows actually move (the
  uncached suffix only, when the decode side's prefix cache already
  holds the shared prefix), the byte count from
  :meth:`~repro.serving.models.ServedModelSpec.kv_bytes_per_token`, and
  the priced wire time.

The numbers mirror the testbed class of the paper's hardware section: a
200 Gbit RDMA NIC (~25 GB/s usable) with single-digit-microsecond
latency.  As with every spec in :mod:`repro.hardware`, what matters
downstream is the *relative* magnitude — KV transfer lands between
NVLink and disk, so disaggregation pays a real but amortizable toll.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import ServedModelSpec

__all__ = [
    "KV_LINK_GBPS", "KV_LINK_LATENCY_S", "InterconnectModel",
    "KvTransferPlan", "plan_kv_transfer",
]

#: usable bandwidth of the pool interconnect (GB/s; ≈ 200 Gbit RDMA)
KV_LINK_GBPS = 25.0
#: per-transfer setup latency of the pool interconnect
KV_LINK_LATENCY_S = 10e-6


@dataclass(frozen=True)
class InterconnectModel:
    """A node-to-node link: setup latency plus stream bandwidth.

    The same fabric carries point-to-point KV moves (disaggregated
    pools) and ring all-reduces (cross-node tensor parallelism), so
    both cost functions live on one spec and can never disagree about
    the wire.
    """

    gbps: float = KV_LINK_GBPS
    latency_s: float = KV_LINK_LATENCY_S

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` point-to-point; zero moves free."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / (self.gbps * 1e9)

    def allreduce_time(self, nbytes: float, n_participants: int) -> float:
        """Ring all-reduce of ``nbytes`` across ``n_participants`` nodes.

        Same 2(n-1)-step ring shape as
        :func:`repro.hardware.cluster.allreduce_time`, over this link
        instead of an intra-node NVLink/PCIe hop.
        """
        if n_participants <= 1 or nbytes <= 0:
            return 0.0
        steps = 2 * (n_participants - 1)
        volume = steps / n_participants * nbytes
        return self.latency_s * steps + volume / (self.gbps * 1e9)


@dataclass(frozen=True)
class KvTransferPlan:
    """One request's priced prefill→decode KV move.

    ``tokens`` is the KV token-rows that cross the wire (context minus
    the prefix-cached prefix); ``cached_tokens`` is what the prefix
    cache saved from the transfer; ``transfer_s`` is the wire time for
    ``nbytes`` under the given :class:`InterconnectModel`.
    """

    tokens: int
    cached_tokens: int
    nbytes: int
    transfer_s: float

    @property
    def skipped(self) -> bool:
        """True when nothing crosses the wire (fully cached context)."""
        return self.tokens == 0


def plan_kv_transfer(spec: ServedModelSpec, link: InterconnectModel,
                     context_tokens: int,
                     cached_prefix_tokens: int = 0) -> KvTransferPlan:
    """Price moving one request's KV context across ``link``.

    ``context_tokens`` is the full KV length produced by prefill
    (prompt plus the first generated token); ``cached_prefix_tokens``
    are already resident on the destination via the shared prefix
    cache, so only the suffix is transferred.
    """
    if context_tokens < 0:
        raise ValueError("context_tokens must be >= 0")
    cached = max(0, min(cached_prefix_tokens, context_tokens))
    tokens = context_tokens - cached
    nbytes = tokens * spec.kv_bytes_per_token()
    return KvTransferPlan(tokens=tokens, cached_tokens=cached,
                          nbytes=nbytes,
                          transfer_s=link.transfer_time(nbytes))
