"""Online serving gateway: submit/step instead of pre-baked traces.

Real serving frontends (vLLM-style continuous batching) accept requests at
runtime; they do not get the whole workload up front.  ``ServingGateway``
is that entry point for every engine speaking the
:class:`~repro.serving.base.ServingEngine` protocol:

* :meth:`submit` — a request joins the simulated system *now* (or at an
  explicit ``arrival_s``), returning a
  :class:`~repro.serving.handle.RequestHandle` — the client's view of
  that one request: per-request token streaming, status, ``cancel()``,
  a finish-by ``deadline_s``, and the terminal record;
* :meth:`step` — advance the engine by one scheduling iteration;
* :meth:`run_until_drained` — serve until every submitted request finished;
* per-token and per-request completion callbacks fire as the simulated
  clock produces tokens, enabling closed-loop clients, autoscalers, and
  interactive sessions.  :meth:`add_token_listener` and
  :meth:`add_completion_listener` register extra observers without
  stealing the constructor callbacks' slots; listeners survive
  :meth:`reset` (they are wiring, not per-timeline state).

Offline :meth:`replay` is a thin adapter over the same machinery — it
submits the trace's requests verbatim and drains — so replaying a trace
through the gateway is bit-identical to the legacy ``engine.run(trace)``
path.  ``replay(trace, cancels=[(request_id, at_s), ...])`` additionally
schedules client cancellations at deterministic simulated times (the
impatient-client workload model).

Multi-tenant admission control (token buckets, VTC fair queueing,
SLO-aware shedding) is layered *in front of* this gateway by
:class:`repro.serving.tenancy.TenantGateway`, which holds requests at the
frontier and releases them through :meth:`ingest`.

Simulated time is owned by the :mod:`repro.sim` kernel underneath the
engine; this gateway exposes it read-only through :attr:`clock` and
:attr:`frontier` so stacked layers (cluster, tenancy) share one
definition of "now" instead of re-deriving it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..workload.spec import Trace, TraceRequest
from .base import ServingEngine
from .handle import HandleStatus, RequestHandle
from .metrics import ServingResult
from .request import RequestRecord, RequestState, ServingRequest
from .streaming_metrics import RecordPolicy

__all__ = ["ServingGateway"]

# gateway-level callbacks
TokenCallback = Callable[[int, str, int, float], None]
#: (request_id, model_id, generated_tokens, clock_s)
CompletionCallback = Callable[[RequestRecord], None]
#: fires once per finished request with its immutable record

#: a client-cancellation schedule: (request_id, cancel_at_s) pairs
CancelSchedule = Iterable[Tuple[int, float]]


class ServingGateway:
    """Online submit/step facade over any registered serving engine."""

    def __init__(self, engine: ServingEngine,
                 on_token: Optional[TokenCallback] = None,
                 on_request_complete: Optional[CompletionCallback] = None,
                 collect_timeline: bool = False,
                 telemetry=None):
        self.engine = engine
        self._on_token = on_token
        self._on_complete = on_request_complete
        self._listeners: List[CompletionCallback] = []
        self._token_listeners: List[TokenCallback] = []
        self._handles: Dict[int, RequestHandle] = {}
        engine.collect_timeline = collect_timeline
        self._next_id = 0
        self._telemetry = None
        self._refresh_hooks()
        if telemetry is not None:
            telemetry.attach_serving(self)

    @property
    def telemetry(self):
        """The attached :class:`repro.telemetry.Telemetry`, or None."""
        return self._telemetry

    def add_completion_listener(self, listener: CompletionCallback) -> None:
        """Register an extra per-request completion callback.

        Listeners run after the constructor's ``on_request_complete`` (if
        any); the admission layer (:mod:`repro.serving.tenancy`) uses this
        to track outstanding work and service rates without stealing the
        user's callback slot.  Listeners survive :meth:`reset`.
        """
        self._listeners.append(listener)
        self._refresh_hooks()

    def add_token_listener(self, listener: TokenCallback) -> None:
        """Register an extra per-token callback — the streaming-side
        parity of :meth:`add_completion_listener`.  Fires as
        ``(request_id, model_id, generated_tokens, clock_s)`` after the
        constructor's ``on_token`` (if any) and survives :meth:`reset`."""
        self._token_listeners.append(listener)
        self._refresh_hooks()

    def _refresh_hooks(self) -> None:
        """Engine callbacks are installed only while someone listens, so
        pure replay paths pay no per-token callback overhead."""
        want_tokens = bool(self._on_token or self._token_listeners
                           or self._handles)
        want_finish = bool(self._on_complete or self._listeners
                           or self._handles)
        self.engine.on_token = self._token_hook if want_tokens else None
        self.engine.on_finish = self._finish_hook if want_finish else None

    # ------------------------------------------------------------------ #
    # online path
    # ------------------------------------------------------------------ #
    def submit(self, model_id: str, prompt_len: int, output_len: int,
               arrival_s: Optional[float] = None,
               tenant_id: Optional[str] = None,
               deadline_s: Optional[float] = None,
               conversation_id: Optional[str] = None) -> RequestHandle:
        """Submit one request; returns its :class:`RequestHandle`.

        ``arrival_s`` defaults to the engine's current simulated clock
        ("the request arrives now"); an explicit value may also lie in the
        future (it joins once the clock gets there) or the past (it joins
        at the next step, keeping its nominal arrival for latency math).
        ``tenant_id`` tags the request for per-tenant metrics and the
        admission layer.  ``deadline_s`` bounds the request: it must
        *finish* within that many simulated seconds of its arrival or it
        is aborted as expired.  ``conversation_id`` marks the request as
        one turn of a multi-turn session, which a prefix-cache-enabled
        engine uses to skip re-prefilling the session's history.  The
        returned handle streams this request's tokens, exposes its
        status and terminal record, and coerces to the integer request
        id for pre-handle call sites.
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 when set")
        if arrival_s is None:
            arrival_s = self.engine.clock
        absolute_deadline = None if deadline_s is None \
            else float(arrival_s) + float(deadline_s)
        request = TraceRequest(request_id=self._next_id, model_id=model_id,
                               arrival_s=float(arrival_s),
                               prompt_tokens=int(prompt_len),
                               output_tokens=int(output_len),
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline,
                               conversation_id=conversation_id)
        self._next_id += 1
        handle = RequestHandle(request.request_id, self, model_id,
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline)
        self._handles[request.request_id] = handle
        self._refresh_hooks()
        self.engine.submit(request)
        return handle

    def ingest(self, request: TraceRequest) -> int:
        """Submit a fully-formed :class:`TraceRequest` verbatim.

        Preserves the caller's request id and arrival time — the entry
        point used by trace replay and by the cluster gateway, which
        allocates ids globally so merged records stay unique.
        """
        self.engine.submit(request)
        self._next_id = max(self._next_id, request.request_id + 1)
        return request.request_id

    def cancel(self, request_id: int, at_s: Optional[float] = None,
               reason: str = "cancel") -> None:
        """Schedule a cancellation of one request at simulated time
        ``at_s`` (default: the engine's current clock, i.e. "now").  The
        abort applies at the first iteration boundary at or after that
        time; stale cancels are ignored."""
        if at_s is None:
            at_s = self.engine.clock
        self.engine.schedule_cancel(int(request_id), float(at_s),
                                    reason=reason)

    def handle(self, request_id: int) -> Optional[RequestHandle]:
        """The handle for a request submitted through this gateway."""
        return self._handles.get(int(request_id))

    def step(self) -> bool:
        """One engine iteration; False when the engine is drained."""
        progressed = self.engine.step()
        if self._telemetry is not None:
            self._telemetry.advance(self.engine.clock)
        return progressed

    def run_until_drained(self) -> ServingResult:
        """Serve until everything submitted so far has finished."""
        if self._telemetry is None:
            self.engine.run_until_drained()
        else:
            # step() advances the telemetry clock each iteration; the
            # direct engine path above stays the telemetry-off fast path
            while self.step():
                pass
        return self.result()

    def result(self) -> ServingResult:
        """Snapshot of completions so far (callable mid-flight)."""
        return self.engine.build_result()

    @property
    def clock(self) -> float:
        return self.engine.clock

    @property
    def frontier(self) -> float:
        """The point simulated time cannot retreat behind — for a single
        engine, its kernel clock.  Outer layers (cluster routing, the
        admission frontier in :mod:`repro.serving.tenancy`) read this
        instead of deriving their own notion of "now"."""
        return self.engine.clock

    @property
    def unfinished(self) -> int:
        return self.engine.unfinished

    @property
    def backlog(self) -> int:
        """Arrived-but-unfinished requests (future arrivals excluded)."""
        return self.engine.backlog

    # ------------------------------------------------------------------ #
    # offline adapter
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Fresh simulated timeline (request ids restart from zero).
        Registered token/completion listeners survive; per-request
        handles from the previous timeline are dropped."""
        self.engine.reset()
        self._handles.clear()
        self._next_id = 0
        self._refresh_hooks()
        if self._telemetry is not None:
            self._telemetry.reset()

    def replay(self, trace: Trace,
               cancels: Optional[CancelSchedule] = None) -> ServingResult:
        """Replay a pre-materialized trace through the online machinery.

        Equivalent to (and bit-identical with) ``engine.run(trace)``:
        resets the engine, submits every trace request verbatim
        (preserving its request id and arrival time), and drains.
        ``cancels`` schedules client cancellations — ``(request_id,
        at_s)`` pairs — at deterministic simulated times; with
        ``cancels=None`` the records are bit-identical to a
        pre-cancellation replay.
        """
        self.reset()
        for request in trace:
            self.ingest(request)
        if cancels is not None:
            for request_id, at_s in cancels:
                self.cancel(request_id, at_s=at_s)
        return self.run_until_drained()

    # ------------------------------------------------------------------ #
    # handle plumbing
    # ------------------------------------------------------------------ #
    def _status_of(self, request_id: int) -> HandleStatus:
        """Live status for a handle (terminal handles answer locally)."""
        req = self.engine.lookup(request_id)
        if req is None:
            return HandleStatus.QUEUED
        return _engine_status(req, self.engine.clock)

    def _token_hook(self, request: ServingRequest, clock: float) -> None:
        if self._on_token is not None:
            self._on_token(request.request_id, request.model_id,
                           request.generated_tokens, clock)
        for listener in self._token_listeners:
            listener(request.request_id, request.model_id,
                     request.generated_tokens, clock)
        handle = self._handles.get(request.request_id)
        if handle is not None:
            handle._push_token(clock, request.generated_tokens)

    @property
    def record_policy(self) -> "RecordPolicy":
        """The engine's record-retention policy (outer layers gate their
        own per-request maps on it)."""
        return self.engine.config.record_policy

    def _finish_hook(self, request: ServingRequest, clock: float) -> None:
        record = request.record()
        if self._on_complete is not None:
            self._on_complete(record)
        for listener in self._listeners:
            listener(record)
        if self.record_policy is RecordPolicy.KEEP_ALL:
            handle = self._handles.get(request.request_id)
        else:
            # releasing policy: terminal handles answer from their own
            # record; dropping the map entry keeps gateway memory
            # O(active requests)
            handle = self._handles.pop(request.request_id, None)
        if handle is not None:
            handle._finish(record)


def _engine_status(req: ServingRequest, clock: float) -> HandleStatus:
    """Map an engine-side request state onto the client vocabulary."""
    if req.state is RequestState.RUNNING:
        return HandleStatus.RUNNING
    if req.state is RequestState.FINISHED:
        return HandleStatus.FINISHED
    if req.state is RequestState.CANCELLED:
        return HandleStatus.CANCELLED
    if req.state is RequestState.EXPIRED:
        return HandleStatus.EXPIRED
    # queued or preempted: inside the engine once it has arrived
    if req.arrival_s <= clock:
        return HandleStatus.ADMITTED
    return HandleStatus.QUEUED
