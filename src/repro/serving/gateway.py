"""Online serving gateway: submit/step instead of pre-baked traces.

Real serving frontends (vLLM-style continuous batching) accept requests at
runtime; they do not get the whole workload up front.  ``ServingGateway``
is that entry point for every engine speaking the
:class:`~repro.serving.base.ServingEngine` protocol:

* :meth:`submit` — a request joins the simulated system *now* (or at an
  explicit ``arrival_s``), returning its request id;
* :meth:`step` — advance the engine by one scheduling iteration;
* :meth:`run_until_drained` — serve until every submitted request finished;
* per-token and per-request completion callbacks fire as the simulated
  clock produces tokens, enabling closed-loop clients, autoscalers, and
  interactive sessions.

Offline :meth:`replay` is a thin adapter over the same machinery — it
submits the trace's requests verbatim and drains — so replaying a trace
through the gateway is bit-identical to the legacy ``engine.run(trace)``
path.

Multi-tenant admission control (token buckets, VTC fair queueing,
SLO-aware shedding) is layered *in front of* this gateway by
:class:`repro.serving.tenancy.TenantGateway`, which holds requests at the
frontier and releases them through :meth:`ingest`; the
:meth:`add_completion_listener` hook is how that admission layer observes
completions without displacing user callbacks.

Simulated time is owned by the :mod:`repro.sim` kernel underneath the
engine; this gateway exposes it read-only through :attr:`clock` and
:attr:`frontier` so stacked layers (cluster, tenancy) share one
definition of "now" instead of re-deriving it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..workload.spec import Trace, TraceRequest
from .base import ServingEngine
from .metrics import ServingResult
from .request import RequestRecord, ServingRequest

__all__ = ["ServingGateway"]

# gateway-level callbacks
TokenCallback = Callable[[int, str, int, float], None]
#: (request_id, model_id, generated_tokens, clock_s)
CompletionCallback = Callable[[RequestRecord], None]
#: fires once per finished request with its immutable record


class ServingGateway:
    """Online submit/step facade over any registered serving engine."""

    def __init__(self, engine: ServingEngine,
                 on_token: Optional[TokenCallback] = None,
                 on_request_complete: Optional[CompletionCallback] = None,
                 collect_timeline: bool = False):
        self.engine = engine
        self._on_token = on_token
        self._on_complete = on_request_complete
        self._listeners: list = []
        engine.collect_timeline = collect_timeline
        engine.on_token = self._token_hook if on_token else None
        engine.on_finish = self._finish_hook if on_request_complete else None
        self._next_id = 0

    def add_completion_listener(self, listener: CompletionCallback) -> None:
        """Register an extra per-request completion callback.

        Listeners run after the constructor's ``on_request_complete`` (if
        any); the admission layer (:mod:`repro.serving.tenancy`) uses this
        to track outstanding work and service rates without stealing the
        user's callback slot.
        """
        self._listeners.append(listener)
        self.engine.on_finish = self._finish_hook

    # ------------------------------------------------------------------ #
    # online path
    # ------------------------------------------------------------------ #
    def submit(self, model_id: str, prompt_len: int, output_len: int,
               arrival_s: Optional[float] = None,
               tenant_id: Optional[str] = None) -> int:
        """Submit one request; returns its request id.

        ``arrival_s`` defaults to the engine's current simulated clock
        ("the request arrives now"); an explicit value may also lie in the
        future (it joins once the clock gets there) or the past (it joins
        at the next step, keeping its nominal arrival for latency math).
        ``tenant_id`` tags the request for per-tenant metrics and the
        admission layer.
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        if arrival_s is None:
            arrival_s = self.engine.clock
        request = TraceRequest(request_id=self._next_id, model_id=model_id,
                               arrival_s=float(arrival_s),
                               prompt_tokens=int(prompt_len),
                               output_tokens=int(output_len),
                               tenant_id=tenant_id)
        self._next_id += 1
        self.engine.submit(request)
        return request.request_id

    def ingest(self, request: TraceRequest) -> int:
        """Submit a fully-formed :class:`TraceRequest` verbatim.

        Preserves the caller's request id and arrival time — the entry
        point used by trace replay and by the cluster gateway, which
        allocates ids globally so merged records stay unique.
        """
        self.engine.submit(request)
        self._next_id = max(self._next_id, request.request_id + 1)
        return request.request_id

    def step(self) -> bool:
        """One engine iteration; False when the engine is drained."""
        return self.engine.step()

    def run_until_drained(self) -> ServingResult:
        """Serve until everything submitted so far has finished."""
        self.engine.run_until_drained()
        return self.result()

    def result(self) -> ServingResult:
        """Snapshot of completions so far (callable mid-flight)."""
        return self.engine.build_result()

    @property
    def clock(self) -> float:
        return self.engine.clock

    @property
    def frontier(self) -> float:
        """The point simulated time cannot retreat behind — for a single
        engine, its kernel clock.  Outer layers (cluster routing, the
        admission frontier in :mod:`repro.serving.tenancy`) read this
        instead of deriving their own notion of "now"."""
        return self.engine.clock

    @property
    def unfinished(self) -> int:
        return self.engine.unfinished

    @property
    def backlog(self) -> int:
        """Arrived-but-unfinished requests (future arrivals excluded)."""
        return self.engine.backlog

    # ------------------------------------------------------------------ #
    # offline adapter
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Fresh simulated timeline (request ids restart from zero)."""
        self.engine.reset()
        self._next_id = 0

    def replay(self, trace: Trace) -> ServingResult:
        """Replay a pre-materialized trace through the online machinery.

        Equivalent to (and bit-identical with) ``engine.run(trace)``:
        resets the engine, submits every trace request verbatim
        (preserving its request id and arrival time), and drains.
        """
        self.engine.reset()
        for request in trace:
            self.ingest(request)
        return self.run_until_drained()

    # ------------------------------------------------------------------ #
    def _token_hook(self, request: ServingRequest, clock: float) -> None:
        self._on_token(request.request_id, request.model_id,
                       request.generated_tokens, clock)

    def _finish_hook(self, request: ServingRequest, clock: float) -> None:
        record = request.record()
        if self._on_complete is not None:
            self._on_complete(record)
        for listener in self._listeners:
            listener(record)
