"""Streaming metrics: quantile sketches, counters, and record retention.

At million-request scale the classic metrics plane — keep every
:class:`~repro.serving.request.RequestRecord` in a Python list, rebuild
latency arrays on every percentile call — costs O(total) memory and
O(total) work per dashboard refresh.  This module is the streaming
replacement, in the spirit of MetaSys-style always-on low-overhead
measurement: engines feed each record exactly once, *at retire time*,
into a :class:`StreamingMetrics` sink, and every aggregate that
``summarize()``/``summarize_by_tenant()``/SLO attainment needs is
maintained incrementally:

* **Quantile sketches** (:class:`QuantileSketch`) — DDSketch-style
  logarithmic fixed-ratio bins with a documented *relative* error bound
  (:data:`SKETCH_RELATIVE_ERROR`).  Deterministic: no RNG, no wall
  clock, bin arithmetic only; mergeable by bin-count addition.
* **Per-tenant counters** — finished/cancelled/expired/shed, tokens
  served/wasted, arrival/finish span — exact, O(tenants) memory.
* **A record-retention policy** (:class:`RecordPolicy`) — ``KEEP_ALL``
  (legacy exact records), ``SAMPLE_K`` (a deterministic Algorithm-R
  reservoir of K records for debugging/inspection), or ``DROP``
  (sketches and counters only).  Under ``SAMPLE_K``/``DROP`` the
  serving stack releases terminal per-request state, so live memory is
  O(active requests) instead of O(total).

Error bounds
------------
A sketch with relative accuracy ``alpha`` stores a value ``v`` in the
bin ``ceil(log_gamma(v))`` with ``gamma = (1+alpha)/(1-alpha)``; the
bin's representative value ``2*gamma**i/(gamma+1)`` is within ``alpha``
relative error of every value in the bin.  ``quantile(q)`` locates the
bin containing the order statistic of index ``floor(q/100*(n-1))`` (the
lower neighbour of numpy's linearly-interpolated percentile), so the
returned estimate ``s`` satisfies ``lo*(1-alpha) <= s <= hi*(1+alpha)``
where ``lo``/``hi`` are the order statistics bracketing the exact
percentile.  Counts, sums, min and max are exact.  ``count_leq`` (SLO
attainment) is exact except for values within ``alpha`` of the
threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .request import DEFAULT_TENANT, RequestRecord

__all__ = ["RecordPolicy", "SKETCH_RELATIVE_ERROR", "QuantileSketch",
           "ReservoirSampler", "TenantCounters", "StreamingMetrics"]

#: default relative-error guarantee of every quantile sketch (1%)
SKETCH_RELATIVE_ERROR = 0.01

#: values at or below this are lumped into the sketch's "zero" bin —
#: relative error is meaningless at 0, and no simulated latency the
#: engines produce is meaningfully below a nanosecond
_MIN_TRACKABLE = 1e-9

#: SeedSequence root entropy for reservoir sampling; combined with the
#: caller's ``sample_seed`` spawn key so reservoirs are deterministic
#: run-to-run yet decorrelated across sinks
_RESERVOIR_ENTROPY = 0x5EED_CAFE


class RecordPolicy(str, Enum):
    """How much per-request state a run retains after retirement."""

    KEEP_ALL = "keep_all"    # every RequestRecord kept (legacy, exact)
    SAMPLE_K = "sample_k"    # deterministic reservoir of K records
    DROP = "drop"            # sketches/counters only: O(active) memory


class QuantileSketch:
    """A deterministic fixed-ratio log-binned quantile sketch.

    DDSketch-style: bin ``i`` covers ``(gamma**(i-1), gamma**i]`` and is
    represented by ``2*gamma**i/(gamma+1)``, giving a guaranteed
    relative error of ``relative_error`` per value (see the module
    docstring for the quantile-level bound).  Memory is O(distinct
    bins) — for latencies spanning 1 ms to 10 h at 1% accuracy, under
    ~900 bins.  Merging adds bin counts, so sketches aggregate across
    replicas exactly like record lists concatenate.
    """

    __slots__ = ("relative_error", "_gamma", "_log_gamma", "_bins",
                 "_n_small", "count", "total", "min_value", "max_value")

    def __init__(self, relative_error: float = SKETCH_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self._n_small = 0            # values <= _MIN_TRACKABLE
        self.count = 0
        self.total = 0.0             # exact running sum
        self.min_value = math.inf
        self.max_value = -math.inf

    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        """Fold one observation in (O(1), pure bin arithmetic)."""
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value <= _MIN_TRACKABLE:
            self._n_small += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        self._bins[key] = self._bins.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (bin-count addition; exact)."""
        if not math.isclose(other._gamma, self._gamma, rel_tol=1e-12):
            raise ValueError("cannot merge sketches with different accuracy")
        for key, n in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + n
        self._n_small += other._n_small
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.relative_error)
        out._bins = dict(self._bins)
        out._n_small = self._n_small
        out.count = self.count
        out.total = self.total
        out.min_value = self.min_value
        out.max_value = self.max_value
        return out

    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Exact mean of the observed values (sum and count are exact)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) within the
        documented relative error; 0.0 on an empty sketch."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        # index of the lower bracketing order statistic of the exact
        # (linearly interpolated) percentile
        rank = int(math.floor(q / 100.0 * (self.count - 1)))
        if rank < self._n_small:
            return max(self.min_value, 0.0)
        cum = self._n_small
        estimate = self.max_value
        for key in sorted(self._bins):
            cum += self._bins[key]
            if cum > rank:
                estimate = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                break
        # min/max are exact: clamping only ever tightens the estimate
        return min(max(estimate, self.min_value), self.max_value)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several percentiles in one pass over the sorted bins."""
        return [self.quantile(q) for q in qs]

    def count_leq(self, threshold: float) -> int:
        """How many observed values are <= ``threshold`` (exact except
        for values within the relative error of the threshold)."""
        if threshold < 0.0:
            return 0
        n = self._n_small
        for key in sorted(self._bins):
            if 2.0 * self._gamma ** key / (self._gamma + 1.0) <= threshold:
                n += self._bins[key]
            else:
                break
        return n

    @property
    def n_bins(self) -> int:
        return len(self._bins)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantileSketch(n={self.count}, bins={len(self._bins)}, "
                f"alpha={self.relative_error})")


class ReservoirSampler:
    """Algorithm-R reservoir of up to ``k`` records, spawn-key seeded.

    Selection is a pure function of ``(sample_seed, offer order)``: the
    generator derives from a fixed root :class:`numpy.random.SeedSequence`
    via the ``sample_seed`` spawn key, so two runs offering the same
    record stream retain the *identical* sample — the determinism the
    sketch tests pin down.  No wall clock, no global RNG.
    """

    __slots__ = ("k", "sample_seed", "_rng", "_samples", "_offered")

    def __init__(self, k: int, sample_seed: int = 0) -> None:
        if k < 1:
            raise ValueError("reservoir size k must be >= 1")
        self.k = k
        self.sample_seed = sample_seed
        seq = np.random.SeedSequence(_RESERVOIR_ENTROPY,
                                     spawn_key=(sample_seed,))
        self._rng = np.random.default_rng(seq)
        self._samples: List[RequestRecord] = []
        self._offered = 0

    def offer(self, record: RequestRecord) -> None:
        self._offered += 1
        if len(self._samples) < self.k:
            self._samples.append(record)
            return
        j = int(self._rng.integers(0, self._offered))
        if j < self.k:
            self._samples[j] = record

    @property
    def n_offered(self) -> int:
        return self._offered

    @property
    def samples(self) -> List[RequestRecord]:
        return list(self._samples)


@dataclass
class TenantCounters:
    """Exact incremental per-tenant counters (O(1) per retirement)."""

    finished: int = 0
    cancelled: int = 0
    expired: int = 0
    shed: int = 0                  # shed/rejected at an admission frontier
    tokens_served: int = 0         # output tokens actually generated
    tokens_wasted: int = 0         # of those, spent on non-finished requests
    prefix_hits: int = 0           # requests that reused a cached prefix
    prefix_saved_tokens: int = 0   # prefill tokens skipped via that reuse

    @property
    def n(self) -> int:
        return self.finished + self.cancelled + self.expired + self.shed

    def as_dict(self) -> Dict[str, int]:
        return {"finished": self.finished, "cancelled": self.cancelled,
                "expired": self.expired, "shed": self.shed,
                "tokens_served": self.tokens_served,
                "tokens_wasted": self.tokens_wasted,
                "prefix_hits": self.prefix_hits,
                "prefix_saved_tokens": self.prefix_saved_tokens}


class _TenantStream:
    """One tenant's (or the overall) incremental aggregate state."""

    __slots__ = ("counters", "e2e", "ttft", "fin_e2e", "fin_ttft",
                 "tpt_sum", "fin_tpt_sum", "min_arrival_s", "max_finish_s")

    def __init__(self, relative_error: float) -> None:
        self.counters = TenantCounters()
        self.e2e = QuantileSketch(relative_error)
        self.ttft = QuantileSketch(relative_error)
        # finished-only twins, for finished_only()/SLO views under DROP
        self.fin_e2e = QuantileSketch(relative_error)
        self.fin_ttft = QuantileSketch(relative_error)
        self.tpt_sum = 0.0
        self.fin_tpt_sum = 0.0
        self.min_arrival_s = math.inf
        self.max_finish_s = -math.inf

    def observe(self, record: RequestRecord) -> None:
        c = self.counters
        status = record.status
        if status == "finished":
            c.finished += 1
        elif status == "cancelled":
            c.cancelled += 1
        elif status == "expired":
            c.expired += 1
        else:                       # "shed"/"rejected": frontier drops
            c.shed += 1
        served = record.tokens_served
        c.tokens_served += served
        if record.cached_prefix_tokens > 0:
            c.prefix_hits += 1
            c.prefix_saved_tokens += record.cached_prefix_tokens
        e2e = record.e2e_latency_s
        ttft = record.ttft_s
        tpt = record.time_per_token_s
        self.e2e.add(e2e)
        self.ttft.add(ttft)
        self.tpt_sum += tpt
        if status == "finished":
            self.fin_e2e.add(e2e)
            self.fin_ttft.add(ttft)
            self.fin_tpt_sum += tpt
        else:
            c.tokens_wasted += served
        if record.arrival_s < self.min_arrival_s:
            self.min_arrival_s = record.arrival_s
        if record.finish_s > self.max_finish_s:
            self.max_finish_s = record.finish_s

    def merge(self, other: "_TenantStream") -> None:
        c, o = self.counters, other.counters
        c.finished += o.finished
        c.cancelled += o.cancelled
        c.expired += o.expired
        c.shed += o.shed
        c.tokens_served += o.tokens_served
        c.tokens_wasted += o.tokens_wasted
        c.prefix_hits += o.prefix_hits
        c.prefix_saved_tokens += o.prefix_saved_tokens
        self.e2e.merge(other.e2e)
        self.ttft.merge(other.ttft)
        self.fin_e2e.merge(other.fin_e2e)
        self.fin_ttft.merge(other.fin_ttft)
        self.tpt_sum += other.tpt_sum
        self.fin_tpt_sum += other.fin_tpt_sum
        self.min_arrival_s = min(self.min_arrival_s, other.min_arrival_s)
        self.max_finish_s = max(self.max_finish_s, other.max_finish_s)

    def copy(self) -> "_TenantStream":
        out = _TenantStream(self.e2e.relative_error)
        out.counters = TenantCounters(**vars(self.counters))
        out.e2e = self.e2e.copy()
        out.ttft = self.ttft.copy()
        out.fin_e2e = self.fin_e2e.copy()
        out.fin_ttft = self.fin_ttft.copy()
        out.tpt_sum = self.tpt_sum
        out.fin_tpt_sum = self.fin_tpt_sum
        out.min_arrival_s = self.min_arrival_s
        out.max_finish_s = self.max_finish_s
        return out

    def finished_view(self) -> "_TenantStream":
        """This stream restricted to finished requests (the sketch-side
        twin of ``ServingResult.finished_only``).  The arrival/finish
        span is the all-statuses span — per-status spans are not
        tracked, and the difference only shifts the *view's* makespan."""
        out = _TenantStream(self.e2e.relative_error)
        c = self.counters
        # prefix counters stay all-statuses: a hit saved prefill work
        # whether or not the request ultimately finished
        out.counters = TenantCounters(
            finished=c.finished,
            tokens_served=c.tokens_served - c.tokens_wasted,
            prefix_hits=c.prefix_hits,
            prefix_saved_tokens=c.prefix_saved_tokens)
        out.e2e = self.fin_e2e.copy()
        out.ttft = self.fin_ttft.copy()
        out.fin_e2e = self.fin_e2e.copy()
        out.fin_ttft = self.fin_ttft.copy()
        out.tpt_sum = self.fin_tpt_sum
        out.fin_tpt_sum = self.fin_tpt_sum
        out.min_arrival_s = self.min_arrival_s
        out.max_finish_s = self.max_finish_s
        return out


class StreamingMetrics:
    """The retire-time metrics sink: sketches + counters + retention.

    One sink per engine timeline; :meth:`observe` is called exactly once
    per retired request (finished *or* aborted).  ``complete`` reports
    whether the retained ``records`` list is the full population
    (``KEEP_ALL``) — when it is not, :class:`~repro.serving.metrics.
    ServingResult` routes every aggregate through the sketches instead.
    """

    def __init__(self, policy: "RecordPolicy | str" = RecordPolicy.KEEP_ALL,
                 sample_k: int = 1024,
                 relative_error: float = SKETCH_RELATIVE_ERROR,
                 sample_seed: int = 0) -> None:
        self.policy = RecordPolicy(policy)
        self.sample_k = sample_k
        self.relative_error = relative_error
        self.sample_seed = sample_seed
        self.complete = self.policy is RecordPolicy.KEEP_ALL
        self._overall = _TenantStream(relative_error)
        self._tenants: Dict[str, _TenantStream] = {}
        # finish-time sketch for throughput_within (overall only)
        self._finish = QuantileSketch(relative_error)
        self._kept: List[RequestRecord] = []
        self._reservoir: Optional[ReservoirSampler] = \
            ReservoirSampler(sample_k, sample_seed) \
            if self.policy is RecordPolicy.SAMPLE_K else None

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def observe(self, record: RequestRecord) -> None:
        """Fold one retired request in (sketches, counters, retention)."""
        self._overall.observe(record)
        tenant = record.tenant_id or DEFAULT_TENANT
        stream = self._tenants.get(tenant)
        if stream is None:
            stream = self._tenants[tenant] = \
                _TenantStream(self.relative_error)
        stream.observe(record)
        self._finish.add(record.finish_s)
        if self.policy is RecordPolicy.KEEP_ALL:
            self._kept.append(record)
        elif self._reservoir is not None:
            self._reservoir.offer(record)

    def observe_all(self, records: Iterable[RequestRecord]) -> None:
        for record in records:
            self.observe(record)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "StreamingMetrics") -> None:
        """Fold another sink in (cluster/replica aggregation).

        Sketches and counters merge exactly; retained records are *not*
        carried over (the record plane concatenates separately in
        ``ServingResult.merge``, and double-holding them would defeat the
        memory bound).  The merged sink is ``complete`` only if both
        sides were.
        """
        self._overall.merge(other._overall)
        for tenant, stream in other._tenants.items():
            mine = self._tenants.get(tenant)
            if mine is None:
                self._tenants[tenant] = stream.copy()
            else:
                mine.merge(stream)
        self._finish.merge(other._finish)
        self.complete = self.complete and other.complete

    def copy(self) -> "StreamingMetrics":
        out = StreamingMetrics(policy=RecordPolicy.DROP,
                               sample_k=self.sample_k,
                               relative_error=self.relative_error,
                               sample_seed=self.sample_seed)
        out.policy = self.policy
        out.complete = self.complete
        out._overall = self._overall.copy()
        out._tenants = {t: s.copy() for t, s in self._tenants.items()}
        out._finish = self._finish.copy()
        out._kept = list(self._kept)
        if self._reservoir is not None:
            res = ReservoirSampler(self.sample_k, self.sample_seed)
            res._samples = list(self._reservoir._samples)
            res._offered = self._reservoir._offered
            res._rng.bit_generator.state = \
                self._reservoir._rng.bit_generator.state
            out._reservoir = res
        return out

    def finished_view(self) -> "StreamingMetrics":
        """Sketch-side ``finished_only``: finished requests only."""
        out = StreamingMetrics(policy=RecordPolicy.DROP,
                               sample_k=self.sample_k,
                               relative_error=self.relative_error,
                               sample_seed=self.sample_seed)
        out.complete = False
        out._overall = self._overall.finished_view()
        out._tenants = {t: s.finished_view()
                        for t, s in self._tenants.items()}
        return out

    def for_tenant(self, tenant_id: Optional[str]) -> "StreamingMetrics":
        """Sketch-side per-tenant slice (empty sink for idle tenants)."""
        key = tenant_id or DEFAULT_TENANT
        out = StreamingMetrics(policy=RecordPolicy.DROP,
                               sample_k=self.sample_k,
                               relative_error=self.relative_error,
                               sample_seed=self.sample_seed)
        out.complete = False
        stream = self._tenants.get(key)
        if stream is not None:
            out._overall = stream.copy()
            out._tenants = {key: stream.copy()}
        return out

    # ------------------------------------------------------------------ #
    # accessors (the surface ServingResult gates onto)
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[RequestRecord]:
        """Retained records: all (KEEP_ALL), a deterministic sample
        (SAMPLE_K), or none (DROP)."""
        if self.policy is RecordPolicy.KEEP_ALL:
            return list(self._kept)
        if self._reservoir is not None:
            return self._reservoir.samples
        return []

    @property
    def n_observed(self) -> int:
        return self._overall.counters.n

    @property
    def n_finished(self) -> int:
        return self._overall.counters.finished

    @property
    def tokens_served(self) -> int:
        return self._overall.counters.tokens_served

    @property
    def tokens_wasted(self) -> int:
        return self._overall.counters.tokens_wasted

    @property
    def prefix_hits(self) -> int:
        """Observed requests that reused a cached KV prefix."""
        return self._overall.counters.prefix_hits

    @property
    def prefix_saved_tokens(self) -> int:
        """Prefill tokens skipped across observed requests via reuse."""
        return self._overall.counters.prefix_saved_tokens

    @property
    def min_arrival_s(self) -> float:
        return self._overall.min_arrival_s

    @property
    def max_finish_s(self) -> float:
        return self._overall.max_finish_s

    @property
    def makespan_s(self) -> float:
        """Earliest-arrival → latest-finish span over observed records
        (0.0 before anything retired)."""
        if self.n_observed == 0:
            return 0.0
        return self._overall.max_finish_s - self._overall.min_arrival_s

    def status_counts(self) -> Dict[str, int]:
        c = self._overall.counters
        out: Dict[str, int] = {}
        if c.finished:
            out["finished"] = c.finished
        if c.cancelled:
            out["cancelled"] = c.cancelled
        if c.expired:
            out["expired"] = c.expired
        if c.shed:
            out["shed"] = c.shed
        return out

    @property
    def tenant_ids(self) -> List[str]:
        return sorted(self._tenants)

    def tenant_counters(self, tenant_id: Optional[str]) -> TenantCounters:
        key = tenant_id or DEFAULT_TENANT
        stream = self._tenants.get(key)
        return stream.counters if stream is not None else TenantCounters()

    def mean_e2e_s(self) -> float:
        return self._overall.e2e.mean

    def mean_ttft_s(self) -> float:
        return self._overall.ttft.mean

    def mean_time_per_token_s(self) -> float:
        n = self.n_observed
        return self._overall.tpt_sum / n if n else 0.0

    def percentile_e2e_s(self, q: float) -> float:
        return self._overall.e2e.quantile(q)

    def percentile_ttft_s(self, q: float) -> float:
        return self._overall.ttft.quantile(q)

    def percentiles_e2e_s(self, qs: Sequence[float]) -> List[float]:
        return self._overall.e2e.quantiles(qs)

    def percentiles_ttft_s(self, qs: Sequence[float]) -> List[float]:
        return self._overall.ttft.quantiles(qs)

    def count_finished_by(self, horizon_s: float) -> int:
        """Observed requests whose finish time is <= ``horizon_s``
        (sketch-approximate around the threshold) — the streaming twin
        of ``ServingResult.throughput_within``'s numerator."""
        return self._finish.count_leq(horizon_s)

    def slo_met_count(self, slo_s: float, metric: str = "ttft") -> int:
        """Finished requests meeting the SLO (sketch-approximate within
        the relative error around the threshold)."""
        sketch = self._overall.fin_ttft if metric == "ttft" \
            else self._overall.fin_e2e
        return sketch.count_leq(slo_s)

    def slo_attainment(self, slo_s: float, metric: str = "e2e") -> float:
        """Fraction of *observed* requests whose latency meets the SLO —
        the sketch twin of :func:`repro.serving.metrics.slo_attainment`."""
        if self.n_observed == 0:
            return 0.0
        sketch = self._overall.e2e if metric == "e2e" else self._overall.ttft
        return sketch.count_leq(slo_s) / self.n_observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamingMetrics(policy={self.policy.value}, "
                f"n={self.n_observed}, tenants={len(self._tenants)})")


def merged_streams(parts: Sequence[Optional[StreamingMetrics]],
                   extra_records: Sequence[Sequence[RequestRecord]] = ()
                   ) -> Optional[StreamingMetrics]:
    """Merge per-part sinks for ``ServingResult.merge``.

    ``parts`` may contain ``None`` for results that predate streaming
    metrics; their records are folded in via ``extra_records`` (the
    caller passes each stream-less part's record list) so the merged
    sketch still covers the whole population.  Returns ``None`` when no
    part carries a sink (pure-legacy merge: nothing to build).
    """
    live = [p for p in parts if p is not None]
    if not live:
        return None
    out = StreamingMetrics(policy=RecordPolicy.DROP,
                           sample_k=live[0].sample_k,
                           relative_error=live[0].relative_error,
                           sample_seed=live[0].sample_seed)
    out.complete = True
    for part in live:
        out.merge_from(part)
    for records in extra_records:
        for record in records:
            out.observe(record)
    return out


__all__.append("merged_streams")
