"""First-class request handles: streaming, cancellation, deadlines.

Every ``submit()`` across the serving stack — engine-backed
:class:`~repro.serving.gateway.ServingGateway`, multi-replica
:class:`~repro.serving.cluster.ClusterGateway`, and the admission-controlled
:class:`~repro.serving.tenancy.TenantGateway` — returns a
:class:`RequestHandle`: the client's per-request view of the simulated
system.  A handle exposes

* :attr:`~RequestHandle.id` and :attr:`~RequestHandle.status` (a
  :class:`HandleStatus`);
* :attr:`~RequestHandle.tokens` — a stream of ``(clock_s, n_generated)``
  token events for *this* request.  Iterating it *drives the simulation*
  (the owning gateway steps until the next token), so a client can
  consume its own output exactly like an SSE stream;
* :meth:`~RequestHandle.record` / :meth:`~RequestHandle.result` once the
  request is terminal, and :meth:`~RequestHandle.add_done_callback` for
  completion-driven clients (closed-loop sessions schedule their next
  turn from it);
* :meth:`~RequestHandle.cancel` — withdraw the request at an explicit
  simulated time (client disconnect, impatience).

Backward compatibility: handles coerce to their integer request id
(``__int__``/``__index__``/``__eq__``/``__hash__``), so every pre-handle
call site that treated ``submit()``'s return value as an ``int`` — using
it as a dict key, comparing it to a record's ``request_id`` — keeps
working unchanged.  ``RequestHandle.shim_int()`` returns the bare id for
callers that want to silence the transition explicitly.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterator, List, Optional, Protocol, Tuple

from ..sim import sanitizer as _sanitizer
from .request import RequestRecord

__all__ = ["HandleStatus", "RequestHandle", "TokenEvent", "HandleGateway"]

#: one streamed token observation: (simulated clock, tokens generated so far)
TokenEvent = Tuple[float, int]

#: callback fired once, when the handle reaches a terminal status
DoneCallback = Callable[["RequestHandle"], None]


class HandleStatus(str, Enum):
    """Client-visible request lifecycle."""

    QUEUED = "queued"        # submitted; waiting to arrive / face admission
    ADMITTED = "admitted"    # accepted into the system, not yet executing
    RUNNING = "running"      # in a batch, generating tokens
    FINISHED = "finished"    # ran to completion
    CANCELLED = "cancelled"  # client withdrew it (partial completion)
    EXPIRED = "expired"      # deadline passed before completion
    SHED = "shed"            # dropped by admission control (shed/rejected)

    @property
    def terminal(self) -> bool:
        return self in (HandleStatus.FINISHED, HandleStatus.CANCELLED,
                        HandleStatus.EXPIRED, HandleStatus.SHED)


class HandleGateway(Protocol):
    """What a handle needs from the gateway that issued it: stepping,
    cancellation routing, and live status lookup.  All three gateways
    (:class:`~repro.serving.gateway.ServingGateway`,
    :class:`~repro.serving.cluster.ClusterGateway`,
    :class:`~repro.serving.tenancy.TenantGateway`) satisfy this."""

    def step(self) -> bool: ...  # pragma: no cover - protocol

    def cancel(self, request_id: int,
               at_s: Optional[float] = None) -> None: ...  # pragma: no cover

    def _status_of(
            self, request_id: int) -> "HandleStatus": ...  # pragma: no cover


#: RequestRecord.status value -> terminal HandleStatus
_RECORD_STATUS = {
    "finished": HandleStatus.FINISHED,
    "cancelled": HandleStatus.CANCELLED,
    "expired": HandleStatus.EXPIRED,
    "shed": HandleStatus.SHED,
    "rejected": HandleStatus.SHED,
}


class RequestHandle:
    """A client's live view of one submitted request.

    Created by the gateway ``submit()`` that owns the request; fed by
    that gateway's token/completion plumbing.  All methods are safe to
    call at any point of the request's life.
    """

    __slots__ = ("_id", "_gateway", "_model_id", "_tenant_id", "_deadline_s",
                 "_events", "_record", "_callbacks")

    def __init__(self, request_id: int, gateway: HandleGateway,
                 model_id: str, tenant_id: Optional[str] = None,
                 deadline_s: Optional[float] = None) -> None:
        self._id = int(request_id)
        self._gateway = gateway
        self._model_id = model_id
        self._tenant_id = tenant_id
        self._deadline_s = deadline_s
        self._events: List[TokenEvent] = []
        self._record: Optional[RequestRecord] = None
        self._callbacks: List[DoneCallback] = []

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def id(self) -> int:
        return self._id

    @property
    def model_id(self) -> str:
        return self._model_id

    @property
    def tenant_id(self) -> Optional[str]:
        return self._tenant_id

    @property
    def deadline_s(self) -> Optional[float]:
        """Absolute simulated finish-by time (None = unbounded)."""
        return self._deadline_s

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def status(self) -> HandleStatus:
        if self._record is not None:
            return _RECORD_STATUS.get(self._record.status,
                                      HandleStatus.FINISHED)
        return self._gateway._status_of(self._id)

    @property
    def done(self) -> bool:
        """Terminal — finished, cancelled, expired, or shed."""
        return self._record is not None

    def record(self) -> RequestRecord:
        """The immutable per-request record; only valid once terminal."""
        if self._record is None:
            raise ValueError(f"request {self._id} is not terminal yet "
                             f"(status={self.status.value})")
        return self._record

    def result(self, drain: bool = True) -> RequestRecord:
        """Block (in simulated time) until terminal, then return the
        record.  With ``drain=False`` the gateway is not stepped and a
        still-running request raises instead."""
        if self._record is None and drain:
            while self._record is None and self._gateway.step():
                pass
        return self.record()

    def add_done_callback(self, fn: DoneCallback) -> None:
        """Run ``fn(handle)`` when the request reaches a terminal state.

        Fires during the gateway step that retires the request (or
        immediately, if already terminal) — the hook closed-loop clients
        use to schedule their next turn as a fresh arrival.
        """
        if self._record is not None:
            fn(self)
        else:
            self._callbacks.append(fn)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    @property
    def tokens(self) -> Iterator[TokenEvent]:
        """Stream this request's ``(clock_s, n_generated)`` token events.

        Consuming the iterator steps the owning gateway whenever no
        buffered event is available and the request is not yet terminal —
        the simulated-time equivalent of reading a streaming response.
        Multiple iterators over the same handle each replay from the
        first token.
        """
        return _TokenStream(self)

    @property
    def token_events(self) -> List[TokenEvent]:
        """Token events observed so far (without driving the gateway)."""
        return list(self._events)

    @property
    def n_generated(self) -> int:
        """Output tokens generated so far."""
        if self._record is not None:
            return self._record.tokens_served
        return self._events[-1][1] if self._events else 0

    # ------------------------------------------------------------------ #
    # control
    # ------------------------------------------------------------------ #
    def cancel(self, at_s: Optional[float] = None) -> None:
        """Withdraw this request at simulated time ``at_s`` (default:
        now, i.e. the gateway's current frontier).  The request aborts at
        the first iteration boundary at or after ``at_s``, freeing its
        batch slot; only tokens generated by then are charged.  Stale
        cancels (already terminal) are ignored."""
        if self._record is not None:
            return
        self._gateway.cancel(self._id, at_s=at_s)

    # ------------------------------------------------------------------ #
    # int compatibility shim (pre-handle call sites)
    # ------------------------------------------------------------------ #
    def shim_int(self) -> int:
        """The bare request id, for legacy ``int``-typed call sites."""
        return self._id

    def __int__(self) -> int:
        return self._id

    def __index__(self) -> int:
        return self._id

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestHandle):
            return self._id == other._id and self._gateway is other._gateway
        if isinstance(other, int):
            return self._id == other
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (RequestHandle, int)):
            return self._id < int(other)
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, (RequestHandle, int)):
            return self._id <= int(other)
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, (RequestHandle, int)):
            return self._id > int(other)
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, (RequestHandle, int)):
            return self._id >= int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._id)

    def __str__(self) -> str:
        # part of the int shim: legacy call sites that printed the
        # returned request id keep printing just the id
        return str(self._id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestHandle(id={self._id}, model={self._model_id!r}, "
                f"status={self.status.value}, tokens={self.n_generated})")

    # ------------------------------------------------------------------ #
    # gateway-side plumbing
    # ------------------------------------------------------------------ #
    def _push_token(self, clock_s: float, n_generated: int) -> None:
        self._events.append((clock_s, n_generated))

    def _finish(self, record: RequestRecord) -> None:
        if self._record is not None:
            # a second terminal transition is a status-machine bug; the
            # sanitizer turns the silent drop into a hard failure
            if _sanitizer.enabled():
                _sanitizer.check_handle_finish(self._id, True)
            return
        self._record = record
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _TokenStream:
    """Iterator over a handle's token events that drives the gateway."""

    __slots__ = ("_handle", "_i")

    def __init__(self, handle: RequestHandle) -> None:
        self._handle = handle
        self._i = 0

    def __iter__(self) -> "_TokenStream":
        return self

    def __next__(self) -> TokenEvent:
        handle = self._handle
        while self._i >= len(handle._events):
            if handle.done or not handle._gateway.step():
                raise StopIteration
        event = handle._events[self._i]
        self._i += 1
        return event
