"""The DeltaZip serving engine: decoupled base+delta continuous batching.

A discrete-event simulation whose *decisions* (admission, batching, swap,
preemption) execute for real against the scheduler and memory pools, while
*durations* come from :class:`IterationCostModel` and the transfer model.
The same engine serves compressed FMT deltas (``variant_kind="delta"``) and
LoRA adapters (``variant_kind="lora"``), mirroring how DeltaZip extends the
Punica/S-LoRA design to deltas.

Timeline semantics per iteration (the shared loop lives in
:class:`~repro.serving.base.ServingEngine`; this class fills in the hooks):

1. arrivals up to the clock join the FCFS queue (and start their async
   disk→CPU delta prefetch, §3.2's "frontend fetches the requested deltas
   into CPU main memory");
2. the scheduler admits requests under the (K, N) limits;
3. newly selected deltas are swapped onto the GPU (CPU→GPU on the critical
   path; LRU eviction of idle deltas);
4. one fused step runs: prefill for newly admitted requests plus one decode
   token for every running request; the clock advances by the modeled time;
5. finished requests retire; their skip-the-line children get preempted and
   requeued at their original position.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from ..hardware.cluster import GPUNode
from ..hardware.memory import Tier
from .base import (PREEMPT_SWAP_S, WORKSPACE_FRACTION, Admission,
                   EngineConfig, ServingEngine, TimelineEvent,
                   register_engine)
from .costs import BatchComposition, IterationCostModel
from .kv_transfer import InterconnectModel
from .model_manager import ArtifactKind, ModelManager
from .prefix_cache import PrefixCache, prefix_block_keys
from .request import ServingRequest
from .scheduler import ContinuousBatchScheduler, SchedulerConfig

__all__ = ["EngineConfig", "DeltaZipEngine", "TimelineEvent"]


@register_engine
class DeltaZipEngine(ServingEngine):
    """Multi-variant serving with compressed deltas (or LoRA adapters)."""

    name = "deltazip"
    variant_artifact = ArtifactKind.DELTA
    include_stats = True

    def __init__(self, manager: ModelManager, node: GPUNode,
                 scheduler_config: SchedulerConfig,
                 engine_config: EngineConfig = EngineConfig()):
        self.scheduler_config = scheduler_config
        self.cost = IterationCostModel(
            spec=manager.spec, gpu=node.gpu_spec,
            tp_degree=engine_config.tp_degree,
            delta_bits=engine_config.delta_bits,
            delta_density=engine_config.delta_density,
            lora_rank=engine_config.lora_rank,
            sbmm_impl=engine_config.sbmm_impl)
        super().__init__(manager, node, engine_config)

    @classmethod
    def build(cls, manager, node, scheduler_config=None, engine_config=None,
              **kwargs):
        return cls(manager, node, scheduler_config or SchedulerConfig(),
                   engine_config or EngineConfig(), **kwargs)

    # ------------------------------------------------------------------ #
    # template hooks
    # ------------------------------------------------------------------ #
    def _reset_engine(self) -> None:
        spec = self.manager.spec
        self.scheduler = ContinuousBatchScheduler(self.scheduler_config)
        # per-TP-group GPU memory budget: each GPU holds 1/tp of weights and
        # KV, so the group budget is one GPU's capacity scaled by tp.  Base
        # weights, resident deltas, and the KV cache share it (§5.4's
        # memory-pressure trade-off behind Fig 10).
        group_capacity = self.node.gpu_spec.memory_bytes * \
            self.config.tp_degree
        self._usable = group_capacity * (1.0 - WORKSPACE_FRACTION)
        self._base_bytes = spec.fp16_nbytes
        if self._base_bytes >= self._usable:
            raise ValueError("base model does not fit in the TP group")
        self._kv_per_token = spec.kv_bytes_per_token()
        self._cpu_ready_s: Dict[str, float] = {}  # async disk->cpu prefetch
        self._resident: "OrderedDict[str, int]" = OrderedDict()  # id -> bytes
        self._resident_bytes = 0
        self._last_batch: Optional[BatchComposition] = None
        # opt-in prefix/KV cache: None keeps every pre-existing code path
        # untouched (cache-off records are bit-identical to older builds)
        self._prefix_cache: Optional[PrefixCache] = \
            PrefixCache(self.config.prefix_block_tokens) \
            if self.config.prefix_cache else None
        self._prefix_refs: Dict[int, List[int]] = {}  # request -> block refs

    def on_arrival(self, request: ServingRequest) -> None:
        self.scheduler.add(request)
        self._start_prefetch(request.model_id, request.arrival_s)

    def has_queued(self) -> bool:
        return len(self.scheduler) > 0

    def remove_queued(self, request_id):
        return self.scheduler.remove(request_id)

    def admit(self) -> Admission:
        decision = self.scheduler.schedule(self.running, list(self._resident))
        admitted = decision.admitted
        cache = self._prefix_cache

        # swap newly selected deltas onto the GPU; deltas compete with the
        # KV cache for the group budget.  With the prefix cache on, KV in
        # use is the shared block pool plus each running request's private
        # (non-pooled) context; cache-off keeps the original expression.
        if cache is None:
            kv_tokens_running = sum(r.context_length for r in self.running)
        else:
            kv_tokens_running = cache.n_tokens + sum(
                r.context_length - r.cached_prefix_tokens
                for r in self.running)
        load_time = 0.0
        for delta_id in decision.new_deltas:
            entry = self.manager.get(delta_id)
            nbytes = entry.nbytes
            kv_bytes = kv_tokens_running * self._kv_per_token
            active = {r.model_id for r in self.running} | \
                {r.model_id for r in admitted}
            while self._base_bytes + self._resident_bytes + nbytes + \
                    kv_bytes > self._usable and self._resident:
                evicted = self._evict_lru(self._resident, active)
                if evicted is None:
                    break
                self._resident_bytes -= evicted
                self.stats.evictions += 1
            if cache is not None and self._base_bytes + \
                    self._resident_bytes + nbytes + kv_bytes > self._usable:
                # shed unreferenced prefix blocks before giving up on the
                # delta: cached history must never block live admissions
                deficit = self._base_bytes + self._resident_bytes + nbytes \
                    + kv_bytes - self._usable
                block_bytes = cache.block_tokens * self._kv_per_token
                n = cache.evict(int(-(-deficit // block_bytes)))
                if n:
                    self.stats.prefix_evictions += n
                    kv_tokens_running -= n * cache.block_tokens
                    kv_bytes = kv_tokens_running * self._kv_per_token
            if self._base_bytes + self._resident_bytes + nbytes + kv_bytes \
                    > self._usable:
                # cannot fit: drop the admissions for this delta
                dropped = [r for r in admitted if r.model_id == delta_id]
                for r in dropped:
                    self.scheduler.reinsert(r)
                    r.skipped_line = False
                    self.stats.blocked_admissions += 1
                admitted = [r for r in admitted if r.model_id != delta_id]
                continue
            load_time += self._swap_in_time(delta_id, nbytes, self.clock)
            self.stats.swap_ins += 1
            self._resident[delta_id] = nbytes
            self._resident_bytes += nbytes
        for r_id in {r.model_id for r in self.running + admitted}:
            if r_id in self._resident:
                self._resident.move_to_end(r_id)

        # KV-capacity admission control: every admitted request must fit
        # its full context into the remaining budget
        kv_budget_tokens = max(
            0, int((self._usable - self._base_bytes - self._resident_bytes)
                   // self._kv_per_token))
        kv_in_use = kv_tokens_running
        kept: List[ServingRequest] = []
        for req in admitted:
            if cache is not None and req.generated_tokens == 0 \
                    and req.request_id not in self._prefix_refs:
                self._prefix_lookup(req)
            need = req.context_length if req.generated_tokens > 0 \
                else req.trace.prompt_tokens + 1
            need -= req.cached_prefix_tokens
            if kv_in_use + need <= kv_budget_tokens:
                kept.append(req)
                kv_in_use += need
                continue
            if cache is not None:
                # make room by dropping unreferenced pool blocks
                deficit = kv_in_use + need - kv_budget_tokens
                n = cache.evict(int(-(-deficit // cache.block_tokens)))
                if n:
                    self.stats.prefix_evictions += n
                    kv_in_use -= n * cache.block_tokens
                if kv_in_use + need <= kv_budget_tokens:
                    kept.append(req)
                    kv_in_use += need
                    continue
                if req.generated_tokens == 0:
                    # back to the queue un-admitted: it will re-run the
                    # lookup (and re-take references) next time around
                    self._release_prefix(req)
                    req.cached_prefix_tokens = 0
            self.scheduler.reinsert(req)
            req.skipped_line = False
            self.stats.blocked_admissions += 1
        return Admission(admitted=kept, load_time_s=load_time)

    def iteration_cost(self, admitted: List[ServingRequest]) -> Optional[float]:
        batch = self._compose(self.running, admitted)
        if batch.empty:
            return None
        self._last_batch = batch
        return self.cost.iteration_time(batch, self.config.variant_kind)

    def on_iteration(self, iter_time: float, load_time: float,
                     admitted: List[ServingRequest]) -> None:
        batch = self._last_batch
        self.stats.iterations += 1
        self.stats.total_load_s += load_time
        self.stats.batched_requests += len(self.running) + len(admitted)
        self.stats.batched_deltas += len(
            set(batch.decode_per_delta) |
            set(batch.prefill_tokens_per_delta))

    def retire(self, newly_done: List[ServingRequest]) -> float:
        if self._prefix_cache is not None and newly_done:
            for req in newly_done:
                self._prefix_commit(req)
            self._prefix_trim()
        preempt_time = 0.0
        for parent in newly_done:
            for child in self.scheduler.children_to_preempt(parent,
                                                            self.running):
                self.running.remove(child)
                child.preemptions += 1
                self.stats.preemptions += 1
                if self.config.preempt_mode == "swap":
                    preempt_time += PREEMPT_SWAP_S
                else:
                    child.needs_recompute = True
                self.scheduler.reinsert(child)
        return preempt_time

    def _apply_cancel(self, request_id: int,
                      reason: str) -> Optional[ServingRequest]:
        req = super()._apply_cancel(request_id, reason)
        if req is not None and self._prefix_cache is not None:
            # aborted work commits nothing; its block references must
            # come back so the pool's refcounts conserve (the sanitizer
            # test pins total_refcount == 0 at drain)
            self._release_prefix(req)
        return req

    def _stall_clock(self, next_arrival_s: float) -> float:
        return max(self.clock + 1e-3, next_arrival_s)

    def utilization(self) -> Dict[str, float]:
        util = super().utilization()
        kv_budget = max(
            0, int((self._usable - self._base_bytes - self._resident_bytes)
                   // self._kv_per_token))
        if kv_budget > 0:
            if self._prefix_cache is None:
                kv_tokens = sum(r.context_length for r in self.running)
            else:
                kv_tokens = self._prefix_cache.n_tokens + sum(
                    r.context_length - r.cached_prefix_tokens
                    for r in self.running)
            util["kv_occupancy"] = kv_tokens / kv_budget
        return util

    def result_config(self) -> Dict[str, object]:
        cfg: Dict[str, object] = {
            "tp_degree": self.config.tp_degree,
            "variant_kind": self.config.variant_kind,
            "max_concurrent_deltas":
                self.scheduler_config.max_concurrent_deltas,
            "max_batch_requests":
                self.scheduler_config.max_batch_requests,
            "preemption": self.scheduler_config.preemption}
        if self.config.prefix_cache:
            cfg["prefix_cache"] = True
            cfg["prefix_block_tokens"] = self.config.prefix_block_tokens
        return cfg

    # ------------------------------------------------------------------ #
    # prefix/KV-cache integration (every call site is gated on the cache
    # existing, so cache-off runs execute none of this)
    # ------------------------------------------------------------------ #
    def _prefix_scope(self, req: ServingRequest):
        # cache-key invariant: (base model, variant) scopes every chain,
        # so two variants can never share a block even when their
        # conversation ids collide
        return (self.manager.spec.name, req.model_id)

    def _prefix_lookup(self, req: ServingRequest) -> None:
        """Longest-cached-prefix lookup for a fresh prefill; takes block
        references and records the hit on the request.  Capped at the
        last complete block strictly inside the prompt, so at least one
        prompt token always remains to prefill (TTFT stays an actual
        iteration)."""
        cache = self._prefix_cache
        trace = req.trace
        if trace.conversation_id is None and trace.shared_prefix_id is None:
            return  # private namespace: a hit is impossible, skip the walk
        self.stats.prefix_lookups += 1
        keys = prefix_block_keys(trace, trace.prompt_tokens - 1,
                                 cache.block_tokens)
        if not keys:
            return
        chain = cache.lookup(self._prefix_scope(req), keys)
        if not chain:
            return
        cache.acquire(chain)
        self._prefix_refs[req.request_id] = chain
        req.cached_prefix_tokens = len(chain) * cache.block_tokens
        self.stats.prefix_hits += 1
        self.stats.prefix_hit_tokens += req.cached_prefix_tokens

    def _prefix_commit(self, req: ServingRequest) -> None:
        """Publish a finished request's context blocks into the pool
        (the next turn's prompt extends them), then return its
        references."""
        cache = self._prefix_cache
        trace = req.trace
        if trace.conversation_id is not None:
            n_tokens = req.context_length
        else:
            # no session: only the cross-request shared region is worth
            # keeping — deeper blocks are private and can never be hit
            n_tokens = min(req.context_length, trace.shared_prefix_tokens) \
                if trace.shared_prefix_id is not None else 0
        if n_tokens:
            cache.insert(self._prefix_scope(req),
                         prefix_block_keys(trace, n_tokens,
                                           cache.block_tokens))
        self._release_prefix(req)

    def _release_prefix(self, req: ServingRequest) -> None:
        chain = self._prefix_refs.pop(req.request_id, None)
        if chain:
            self._prefix_cache.release(chain)

    def _prefix_trim(self) -> None:
        """Evict cold pool blocks until pool + private KV fits the
        budget again (commits can overshoot transiently)."""
        cache = self._prefix_cache
        kv_budget_tokens = max(
            0, int((self._usable - self._base_bytes - self._resident_bytes)
                   // self._kv_per_token))
        private = sum(r.context_length - r.cached_prefix_tokens
                      for r in self.running)
        allowed = max(0, kv_budget_tokens - private) // cache.block_tokens
        self.stats.prefix_evictions += cache.evict_to(allowed)

    # ------------------------------------------------------------------ #
    def _start_prefetch(self, model_id: str, now_s: float) -> None:
        if model_id in self._cpu_ready_s:
            return
        entry = self.manager.get(model_id)
        decompress = self.config.lossless_decompress_gbps
        fetch = self.node.load_time(entry.nbytes, Tier.DISK, Tier.CPU,
                                    decompress_gbps=decompress)
        self._cpu_ready_s[model_id] = now_s + fetch

    def receive_delta(self, model_id: str, at_s: float,
                      link: Optional[InterconnectModel] = None) -> float:
        """Stage an incoming delta migration (peer replica → CPU memory).

        Prices moving ``model_id``'s artifact over ``link`` starting at
        ``at_s``; until it lands, swap-ins of that delta wait out the
        arrival exactly like the async disk prefetch does.  Returns the
        wire time.  The lineage balancer uses this to migrate a delta
        off a draining replica instead of re-fetching it from disk.
        """
        entry = self.manager.get(model_id)
        if link is None:
            link = InterconnectModel()
        transfer_s = link.transfer_time(entry.nbytes)
        ready = float(at_s) + transfer_s
        current = self._cpu_ready_s.get(model_id)
        if current is None or ready < current:
            self._cpu_ready_s[model_id] = ready
        return transfer_s

    def _swap_in_time(self, model_id: str, nbytes: int, now_s: float) -> float:
        """CPU→GPU transfer, waiting out the async disk fetch if needed."""
        wait = max(0.0, self._cpu_ready_s.get(model_id, now_s) - now_s)
        pcie = self.node.load_time(nbytes, Tier.CPU, Tier.GPU)
        return wait + pcie

    @staticmethod
    def _evict_lru(resident: "OrderedDict[str, int]",
                   active: Set[str]) -> Optional[int]:
        for model_id in resident:
            if model_id not in active:
                return resident.pop(model_id)
        return None

    def _compose(self, running: List[ServingRequest],
                 admitted: List[ServingRequest]) -> BatchComposition:
        decode: Dict[str, int] = {}
        prefill: Dict[str, int] = {}
        context = 0
        admitted_ids = {r.request_id for r in admitted}
        for req in running:
            if req.request_id in admitted_ids:
                continue
            decode[req.model_id] = decode.get(req.model_id, 0) + 1
            context += req.context_length
        for req in admitted:
            # a prefix-cache hit shifts the reused tokens from prefill to
            # attention context; cached_prefix_tokens is 0 whenever the
            # cache is off, so this is the exact pre-existing arithmetic
            if req.generated_tokens == 0:
                prefill[req.model_id] = prefill.get(req.model_id, 0) \
                    + req.trace.prompt_tokens - req.cached_prefix_tokens
                context += req.cached_prefix_tokens
            elif req.needs_recompute:
                # recompute resume: re-prefill the whole (uncached) context
                prefill[req.model_id] = prefill.get(req.model_id, 0) \
                    + req.context_length - req.cached_prefix_tokens
                context += req.cached_prefix_tokens
                req.needs_recompute = False
            else:
                # swap resume: decoding continues from the parked KV state
                decode[req.model_id] = decode.get(req.model_id, 0) + 1
                context += req.context_length
        return BatchComposition(decode_per_delta=decode,
                                prefill_tokens_per_delta=prefill,
                                context_tokens=context)
