"""The DeltaZip serving engine: decoupled base+delta continuous batching.

A discrete-event simulation whose *decisions* (admission, batching, swap,
preemption) execute for real against the scheduler and memory pools, while
*durations* come from :class:`IterationCostModel` and the transfer model.
The same engine serves compressed FMT deltas (``variant_kind="delta"``) and
LoRA adapters (``variant_kind="lora"``), mirroring how DeltaZip extends the
Punica/S-LoRA design to deltas.

Timeline semantics per iteration:

1. arrivals up to the clock join the FCFS queue (and start their async
   disk→CPU delta prefetch, §3.2's "frontend fetches the requested deltas
   into CPU main memory");
2. the scheduler admits requests under the (K, N) limits;
3. newly selected deltas are swapped onto the GPU (CPU→GPU on the critical
   path; LRU eviction of idle deltas);
4. one fused step runs: prefill for newly admitted requests plus one decode
   token for every running request; the clock advances by the modeled time;
5. finished requests retire; their skip-the-line children get preempted and
   requeued at their original position.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..hardware.cluster import GPUNode
from ..hardware.memory import Tier
from ..workload.spec import Trace
from .costs import BatchComposition, IterationCostModel
from .metrics import EngineStats, ServingResult
from .model_manager import ArtifactKind, ModelManager
from .models import FP16, ServedModelSpec
from .request import RequestState, ServingRequest
from .scheduler import ContinuousBatchScheduler, SchedulerConfig

__all__ = ["EngineConfig", "DeltaZipEngine", "TimelineEvent"]

_WORKSPACE_FRACTION = 0.08   # activations, CUDA context, fragmentation
_PREEMPT_SWAP_S = 5e-3       # KV swap-out/in cost per preemption
# standard checkpoint loaders (deserialize + per-tensor copies) move whole
# FP16 models far below raw link bandwidth; compressed deltas use the packed
# raw-buffer path and do not pay this
_FULL_MODEL_LOADER_FACTOR = 4.0


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (scheduler limits live in SchedulerConfig).

    ``preempt_mode`` explores §5.4's open question: "swap" parks a
    preempted request's KV state in CPU memory and resumes by decoding
    (paying a fixed swap cost per preemption); "recompute" discards the KV
    state for free but must re-prefill the full context at resume time.
    """

    tp_degree: int = 4
    variant_kind: str = "delta"      # "delta" | "lora" | "none"
    delta_bits: int = 4
    delta_density: float = 0.5
    lora_rank: int = 16
    sbmm_impl: str = "sbmm"
    lossless_decompress_gbps: Optional[float] = None
    preempt_mode: str = "swap"       # "swap" | "recompute"
    max_sim_seconds: float = 36000.0

    def __post_init__(self):
        if self.preempt_mode not in ("swap", "recompute"):
            raise ValueError(f"unknown preempt_mode {self.preempt_mode!r}")
        if self.variant_kind not in ("delta", "lora", "none"):
            raise ValueError(f"unknown variant_kind {self.variant_kind!r}")


@dataclass
class TimelineEvent:
    """Per-request phase spans for the Fig 16 breakdown."""

    request_id: int
    model_id: str
    arrival_s: float
    queue_until_s: float
    loading_until_s: float
    finish_s: float


class DeltaZipEngine:
    """Multi-variant serving with compressed deltas (or LoRA adapters)."""

    name = "deltazip"

    def __init__(self, manager: ModelManager, node: GPUNode,
                 scheduler_config: SchedulerConfig,
                 engine_config: EngineConfig = EngineConfig()):
        self.manager = manager
        self.node = node
        self.scheduler_config = scheduler_config
        self.config = engine_config
        self.cost = IterationCostModel(
            spec=manager.spec, gpu=node.gpu_spec,
            tp_degree=engine_config.tp_degree,
            delta_bits=engine_config.delta_bits,
            delta_density=engine_config.delta_density,
            lora_rank=engine_config.lora_rank,
            sbmm_impl=engine_config.sbmm_impl)

    # ------------------------------------------------------------------ #
    def run(self, trace: Trace, collect_timeline: bool = False) -> ServingResult:
        cfg = self.config
        spec = self.manager.spec
        scheduler = ContinuousBatchScheduler(self.scheduler_config)

        # per-TP-group GPU memory budget: each GPU holds 1/tp of weights and
        # KV, so the group budget is one GPU's capacity scaled by tp.  Base
        # weights, resident deltas, and the KV cache share it (§5.4's
        # memory-pressure trade-off behind Fig 10).
        group_capacity = self.node.gpu_spec.memory_bytes * cfg.tp_degree
        usable = group_capacity * (1.0 - _WORKSPACE_FRACTION)
        base_bytes = spec.fp16_nbytes
        if base_bytes >= usable:
            raise ValueError("base model does not fit in the TP group")
        kv_per_token = spec.kv_bytes_per_token()

        requests = [ServingRequest(trace=t) for t in trace]
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        cpu_ready_s: Dict[str, float] = {}       # async disk->cpu prefetch
        resident: "OrderedDict[str, int]" = OrderedDict()  # LRU: id -> bytes
        resident_bytes = 0
        running: List[ServingRequest] = []
        finished: List[ServingRequest] = []
        timeline: List[TimelineEvent] = []
        stats = EngineStats()

        clock = 0.0
        next_arrival = 0
        n_total = len(requests)

        while len(finished) < n_total and clock < cfg.max_sim_seconds:
            # 1. admit arrivals; kick off disk->cpu prefetches
            while next_arrival < n_total and \
                    pending[next_arrival].arrival_s <= clock:
                req = pending[next_arrival]
                scheduler.add(req)
                self._start_prefetch(req.model_id, req.arrival_s, cpu_ready_s)
                next_arrival += 1

            if not running and len(scheduler) == 0:
                if next_arrival >= n_total:
                    break
                clock = max(clock, pending[next_arrival].arrival_s)
                continue

            # 2. schedule
            decision = scheduler.schedule(running, list(resident))
            admitted = decision.admitted

            # 3. swap newly selected deltas onto the GPU; deltas compete
            # with the KV cache for the group budget
            kv_tokens_running = sum(r.context_length for r in running)
            load_time = 0.0
            for delta_id in decision.new_deltas:
                entry = self.manager.get(delta_id)
                nbytes = entry.nbytes
                kv_bytes = kv_tokens_running * kv_per_token
                active = {r.model_id for r in running} | \
                    {r.model_id for r in admitted}
                while base_bytes + resident_bytes + nbytes + kv_bytes \
                        > usable and resident:
                    evicted = self._evict_lru(resident, active)
                    if evicted is None:
                        break
                    resident_bytes -= evicted
                    stats.evictions += 1
                if base_bytes + resident_bytes + nbytes + kv_bytes > usable:
                    # cannot fit: drop the admissions for this delta
                    dropped = [r for r in admitted if r.model_id == delta_id]
                    for r in dropped:
                        scheduler.reinsert(r)
                        r.skipped_line = False
                        stats.blocked_admissions += 1
                    admitted = [r for r in admitted if r.model_id != delta_id]
                    continue
                load_time += self._swap_in_time(delta_id, nbytes, clock,
                                                cpu_ready_s)
                stats.swap_ins += 1
                resident[delta_id] = nbytes
                resident_bytes += nbytes
            for r_id in {r.model_id for r in running + admitted}:
                if r_id in resident:
                    resident.move_to_end(r_id)

            # 3b. KV-capacity admission control: every admitted request must
            # fit its full context into the remaining budget
            kv_budget_tokens = max(
                0, int((usable - base_bytes - resident_bytes) // kv_per_token))
            kv_in_use = kv_tokens_running
            kept: List[ServingRequest] = []
            for req in admitted:
                need = req.context_length if req.generated_tokens > 0 \
                    else req.trace.prompt_tokens + 1
                if kv_in_use + need <= kv_budget_tokens:
                    kept.append(req)
                    kv_in_use += need
                else:
                    scheduler.reinsert(req)
                    req.skipped_line = False
                    stats.blocked_admissions += 1
            admitted = kept

            # 4. execute one fused prefill+decode iteration
            admitted_ids = {r.request_id for r in admitted}
            for req in admitted:
                req.state = RequestState.RUNNING
                if req.first_scheduled_s is None:
                    req.first_scheduled_s = clock
                    req.queue_wait_s = clock - req.arrival_s
                req.loading_s += load_time
            batch = self._compose(running, admitted)
            if batch.empty:
                # every admission was blocked (memory) and nothing is
                # running: jump to the next arrival or give up
                if load_time > 0:
                    clock += load_time
                elif next_arrival < n_total:
                    clock = max(clock + 1e-3,
                                pending[next_arrival].arrival_s)
                else:
                    break
                continue
            iter_time = self.cost.iteration_time(batch, cfg.variant_kind)
            clock += iter_time + load_time
            stats.iterations += 1
            stats.total_load_s += load_time
            stats.batched_requests += len(running) + len(admitted)
            stats.batched_deltas += len(
                set(batch.decode_per_delta) |
                set(batch.prefill_tokens_per_delta))

            for req in admitted:
                req.prefilled = True
                req.generated_tokens += 1
                if req.first_token_s is None:
                    req.first_token_s = clock
                req.inference_s += iter_time
                running.append(req)
            for req in running:
                if req.request_id in admitted_ids:
                    continue
                req.generated_tokens += 1
                req.inference_s += iter_time

            # 5. retire finished; preempt orphaned line-skippers
            newly_done = [r for r in running if r.done]
            for req in newly_done:
                req.state = RequestState.FINISHED
                req.finish_s = clock
                finished.append(req)
            running = [r for r in running if not r.done]
            preempt_time = 0.0
            for parent in newly_done:
                for child in scheduler.children_to_preempt(parent, running):
                    running.remove(child)
                    child.preemptions += 1
                    stats.preemptions += 1
                    if cfg.preempt_mode == "swap":
                        preempt_time += _PREEMPT_SWAP_S
                    else:
                        child.needs_recompute = True
                    scheduler.reinsert(child)
            clock += preempt_time

            if collect_timeline:
                for req in newly_done:
                    timeline.append(TimelineEvent(
                        request_id=req.request_id, model_id=req.model_id,
                        arrival_s=req.arrival_s,
                        queue_until_s=req.first_scheduled_s,
                        loading_until_s=req.first_scheduled_s + req.loading_s,
                        finish_s=req.finish_s))

        records = [r.record() for r in finished]
        makespan = max((r.finish_s for r in records), default=clock) - \
            min((r.arrival_s for r in records), default=0.0)
        result = ServingResult(
            engine=self.name, records=records, makespan_s=max(makespan, 1e-9),
            stats=stats,
            config={"tp_degree": cfg.tp_degree,
                    "variant_kind": cfg.variant_kind,
                    "max_concurrent_deltas":
                        self.scheduler_config.max_concurrent_deltas,
                    "max_batch_requests":
                        self.scheduler_config.max_batch_requests,
                    "preemption": self.scheduler_config.preemption})
        if collect_timeline:
            result.config["timeline"] = timeline
        return result

    # ------------------------------------------------------------------ #
    def _start_prefetch(self, model_id: str, now_s: float,
                        cpu_ready_s: Dict[str, float]) -> None:
        if model_id in cpu_ready_s:
            return
        entry = self.manager.get(model_id)
        decompress = self.config.lossless_decompress_gbps
        fetch = self.node.load_time(entry.nbytes, Tier.DISK, Tier.CPU,
                                    decompress_gbps=decompress)
        cpu_ready_s[model_id] = now_s + fetch

    def _swap_in_time(self, model_id: str, nbytes: int, now_s: float,
                      cpu_ready_s: Dict[str, float]) -> float:
        """CPU→GPU transfer, waiting out the async disk fetch if needed."""
        wait = max(0.0, cpu_ready_s.get(model_id, now_s) - now_s)
        pcie = self.node.load_time(nbytes, Tier.CPU, Tier.GPU)
        return wait + pcie

    @staticmethod
    def _evict_lru(resident: "OrderedDict[str, int]",
                   active: Set[str]) -> Optional[int]:
        for model_id in resident:
            if model_id not in active:
                return resident.pop(model_id)
        return None

    def _compose(self, running: List[ServingRequest],
                 admitted: List[ServingRequest]) -> BatchComposition:
        decode: Dict[str, int] = {}
        prefill: Dict[str, int] = {}
        context = 0
        admitted_ids = {r.request_id for r in admitted}
        for req in running:
            if req.request_id in admitted_ids:
                continue
            decode[req.model_id] = decode.get(req.model_id, 0) + 1
            context += req.context_length
        for req in admitted:
            if req.generated_tokens == 0:
                prefill[req.model_id] = prefill.get(req.model_id, 0) \
                    + req.trace.prompt_tokens
            elif req.needs_recompute:
                # recompute resume: re-prefill the whole context
                prefill[req.model_id] = prefill.get(req.model_id, 0) \
                    + req.context_length
                req.needs_recompute = False
            else:
                # swap resume: decoding continues from the parked KV state
                decode[req.model_id] = decode.get(req.model_id, 0) + 1
                context += req.context_length
        return BatchComposition(decode_per_delta=decode,
                                prefill_tokens_per_delta=prefill,
                                context_tokens=context)
