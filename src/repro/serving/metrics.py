"""Serving metrics: throughput, latency, TTFT, SLO attainment (§6.1).

Per-tenant views (``ServingResult.for_tenant`` / ``by_tenant``,
:func:`summarize_by_tenant`, :func:`slo_attainment_by_tenant`,
:func:`jain_fairness_index`) slice the same records by the ``tenant_id``
the admission layer (:mod:`repro.serving.tenancy`) threads through them.
Every accessor is total on empty/degenerate record lists — slicing an
idle tenant returns zeros, never raises.

Scale: a :class:`ServingResult` optionally carries a
:class:`~repro.serving.streaming_metrics.StreamingMetrics` sink
(``result.stream``).  When the run's
:class:`~repro.serving.streaming_metrics.RecordPolicy` retained every
record (``KEEP_ALL``) the exact record-based math runs as always —
with the latency arrays built and sorted *once* and cached, instead of
a fresh list comprehension per percentile call.  When records were
sampled or dropped, every aggregate routes through the sink's quantile
sketches and counters instead, within the sketch's documented relative
error (see :data:`~repro.serving.streaming_metrics.SKETCH_RELATIVE_ERROR`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .request import DEFAULT_TENANT, RequestRecord
from .streaming_metrics import StreamingMetrics, merged_streams

__all__ = ["EngineStats", "ServingResult", "slo_attainment", "summarize",
           "summarize_by_tenant", "slo_attainment_by_tenant",
           "jain_fairness_index", "UNTENANTED"]

#: key used for records with no tenant tag in per-tenant groupings
UNTENANTED = DEFAULT_TENANT


@dataclass
class EngineStats:
    """Per-run engine telemetry (iteration-level counters)."""

    iterations: int = 0
    total_load_s: float = 0.0
    swap_ins: int = 0
    evictions: int = 0
    preemptions: int = 0
    batched_requests: int = 0       # sum of batch sizes over iterations
    batched_deltas: int = 0         # sum of distinct variants per iteration
    blocked_admissions: int = 0     # KV/memory admission rejections
    aborts: int = 0                 # cancelled/expired requests removed
    prefix_lookups: int = 0         # prefix-cache-eligible fresh prefills
    prefix_hits: int = 0            # lookups that reused >= 1 block
    prefix_hit_tokens: int = 0      # prompt tokens served from the pool
    prefix_evictions: int = 0       # pool blocks dropped for KV pressure
    kv_transfers: int = 0           # prefill→decode KV moves (disagg)
    kv_transfer_bytes: int = 0      # bytes that crossed the pool link
    kv_transfer_s: float = 0.0      # priced interconnect occupancy

    @property
    def prefix_hit_rate(self) -> float:
        return self.prefix_hits / self.prefix_lookups \
            if self.prefix_lookups else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.iterations if self.iterations \
            else 0.0

    @property
    def mean_deltas_per_batch(self) -> float:
        return self.batched_deltas / self.iterations if self.iterations \
            else 0.0


@dataclass
class ServingResult:
    """Output of one engine run over a trace."""

    engine: str
    records: List[RequestRecord]
    makespan_s: float
    config: Dict[str, object] = field(default_factory=dict)
    stats: Optional["EngineStats"] = None
    #: retire-time streaming sink (sketches + counters); None on results
    #: assembled by hand from bare record lists
    stream: Optional[StreamingMetrics] = None
    # cached (sorted e2e, sorted ttft, time-per-token) arrays; built on
    # first percentile/mean call, never mutated.  merge/for_tenant/
    # finished_only return fresh objects, which is what invalidates it.
    _lat_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, results: Sequence["ServingResult"],
              engine: str = "merged",
              config: Optional[Dict[str, object]] = None) -> "ServingResult":
        """Cluster-level aggregation: concatenate per-group records.

        The merged makespan spans the earliest arrival to the latest
        finish across every record, so percentile/SLO/throughput math on
        the merged result stays consistent with the per-group results.
        Streaming sinks merge alongside (bin-count addition); parts
        without a sink contribute their records, so the merged sketches
        cover the whole population even in mixed merges.

        Merging nothing (no results, or only empty ones) is well-defined:
        an empty result with zero makespan whose rate/latency/percentile
        accessors and :func:`summarize` all return 0.0 instead of tripping
        percentile or division math.
        """
        records = [r for res in results for r in res.records]
        stream = merged_streams(
            [res.stream for res in results],
            extra_records=[res.records for res in results
                           if res.stream is None])
        n_observed = stream.n_observed if stream is not None else 0
        if not records and n_observed == 0:
            return cls(engine=engine, records=[], makespan_s=0.0,
                       config=dict(config) if config else {}, stream=stream)
        if n_observed:
            # sink min/max are exact, and the sink covers every part
            makespan = stream.makespan_s
        else:
            makespan = max(r.finish_s for r in records) - \
                min(r.arrival_s for r in records)
        return cls(engine=engine, records=records,
                   makespan_s=max(makespan, 1e-9),
                   config=dict(config) if config else {}, stream=stream)

    # ------------------------------------------------------------------ #
    @property
    def _sketch(self) -> Optional[StreamingMetrics]:
        """The sink, when it must stand in for the records (records were
        sampled or dropped); None when records are the full population."""
        if self.stream is not None and not self.stream.complete:
            return self.stream
        return None

    def _lat_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached (sorted e2e, sorted ttft, per-token) latency arrays."""
        cache = self._lat_cache
        if cache is None:
            n = len(self.records)
            e2e = np.fromiter((r.finish_s - r.arrival_s
                               for r in self.records),
                              dtype=np.float64, count=n)
            ttft = np.fromiter(
                ((r.first_token_s - r.arrival_s
                  if r.first_token_s is not None
                  else r.finish_s - r.arrival_s) for r in self.records),
                dtype=np.float64, count=n)
            tpt = np.fromiter((r.e2e_latency_s / max(r.output_tokens, 1)
                               for r in self.records),
                              dtype=np.float64, count=n)
            e2e.sort()
            ttft.sort()
            cache = (e2e, ttft, tpt)
            self._lat_cache = cache
        return cache

    # ------------------------------------------------------------------ #
    @property
    def n_requests(self) -> int:
        sketch = self._sketch
        if sketch is not None:
            return sketch.n_observed
        return len(self.records)

    @property
    def tenant_ids(self) -> List[str]:
        """Distinct tenants across records (untagged maps to UNTENANTED)."""
        sketch = self._sketch
        if sketch is not None:
            return sketch.tenant_ids
        return sorted({r.tenant_id or UNTENANTED for r in self.records})

    def for_tenant(self, tenant_id: Optional[str]) -> "ServingResult":
        """This result restricted to one tenant's records.

        ``tenant_id=None`` (or ``UNTENANTED``) selects untagged records.
        An idle tenant yields a well-defined empty result whose latency
        and throughput accessors all return 0.0.
        """
        key = tenant_id or UNTENANTED
        sketch = self._sketch
        if sketch is not None:
            sub = sketch.for_tenant(key)
            records = [r for r in self.records
                       if (r.tenant_id or UNTENANTED) == key]
            makespan = max(sub.makespan_s, 1e-9) if sub.n_observed else 0.0
            sliced = ServingResult(engine=self.engine, records=records,
                                   makespan_s=makespan,
                                   config=dict(self.config), stream=sub)
            sliced.config["tenant_id"] = key
            return sliced
        records = [r for r in self.records
                   if (r.tenant_id or UNTENANTED) == key]
        sliced = ServingResult.merge(
            [ServingResult(engine=self.engine, records=records,
                           makespan_s=self.makespan_s)],
            engine=self.engine, config=dict(self.config))
        sliced.config["tenant_id"] = key
        return sliced

    def by_tenant(self) -> Dict[str, "ServingResult"]:
        """Per-tenant slices keyed by tenant id."""
        return {t: self.for_tenant(t) for t in self.tenant_ids}

    # ------------------------------------------------------------------ #
    # terminal-status views (cancellation/deadline runs)
    # ------------------------------------------------------------------ #
    def status_counts(self) -> Dict[str, int]:
        """Records per terminal status (``finished`` / ``cancelled`` /
        ``expired``; pre-cancellation runs are all ``finished``)."""
        sketch = self._sketch
        if sketch is not None:
            return sketch.status_counts()
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.status] = counts.get(rec.status, 0) + 1
        return counts

    @property
    def n_finished(self) -> int:
        sketch = self._sketch
        if sketch is not None:
            return sketch.n_finished
        return sum(1 for r in self.records if r.finished)

    def finished_only(self) -> "ServingResult":
        """This result restricted to requests that ran to completion —
        the slice latency/SLO math should usually see under abandonment."""
        sketch = self._sketch
        if sketch is not None:
            view = sketch.finished_view()
            records = [r for r in self.records if r.finished]
            makespan = max(view.makespan_s, 1e-9) if view.n_observed \
                else self.makespan_s
            return ServingResult(engine=self.engine, records=records,
                                 makespan_s=makespan,
                                 config=dict(self.config), stream=view)
        sliced = ServingResult.merge(
            [ServingResult(engine=self.engine,
                           records=[r for r in self.records if r.finished],
                           makespan_s=self.makespan_s)],
            engine=self.engine, config=dict(self.config))
        if not sliced.records:
            sliced.makespan_s = self.makespan_s
        return sliced

    def goodput_rps(self) -> float:
        """*Finished* requests per second of makespan: throughput that
        excludes work clients abandoned (cancelled/expired)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_finished / self.makespan_s

    def wasted_token_fraction(self) -> float:
        """Share of generated output tokens spent on requests that never
        finished — the capacity impatient clients burn."""
        sketch = self._sketch
        if sketch is not None:
            served = sketch.tokens_served
            return sketch.tokens_wasted / served if served else 0.0
        served = sum(r.tokens_served for r in self.records)
        if served == 0:
            return 0.0
        wasted = sum(r.tokens_served for r in self.records if not r.finished)
        return wasted / served

    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_requests / self.makespan_s

    def throughput_within(self, horizon_s: float) -> float:
        """Requests completed by ``horizon_s``, per second (Fig 11's metric).

        A saturated engine keeps serving long after the trace window ends;
        the paper's throughput credits only work finished inside the
        measurement window, which is what separates the systems at high
        load.
        """
        if horizon_s <= 0:
            return 0.0
        sketch = self._sketch
        if sketch is not None:
            return sketch.count_finished_by(horizon_s) / horizon_s
        done = sum(1 for r in self.records if r.finish_s <= horizon_s)
        return done / horizon_s

    def token_throughput(self) -> float:
        """Output tokens actually generated per second of makespan
        (identical to the requested-token rate when nothing aborted)."""
        if self.makespan_s <= 0:
            return 0.0
        sketch = self._sketch
        if sketch is not None:
            return sketch.tokens_served / self.makespan_s
        return sum(r.tokens_served for r in self.records) / self.makespan_s

    def mean_e2e_latency_s(self) -> float:
        sketch = self._sketch
        if sketch is not None:
            return sketch.mean_e2e_s()
        if not self.records:
            return 0.0
        return float(np.mean(self._lat_arrays()[0]))

    def mean_ttft_s(self) -> float:
        sketch = self._sketch
        if sketch is not None:
            return sketch.mean_ttft_s()
        if not self.records:
            return 0.0
        return float(np.mean(self._lat_arrays()[1]))

    def percentile_e2e_s(self, q: float) -> float:
        sketch = self._sketch
        if sketch is not None:
            return sketch.percentile_e2e_s(q)
        if not self.records:
            return 0.0
        return float(np.percentile(self._lat_arrays()[0], q))

    def percentile_ttft_s(self, q: float) -> float:
        sketch = self._sketch
        if sketch is not None:
            return sketch.percentile_ttft_s(q)
        if not self.records:
            return 0.0
        return float(np.percentile(self._lat_arrays()[1], q))

    def percentiles_e2e_s(self, qs: Sequence[float]) -> List[float]:
        """Several e2e percentiles in one pass over the cached array."""
        sketch = self._sketch
        if sketch is not None:
            return sketch.percentiles_e2e_s(qs)
        if not self.records:
            return [0.0 for _ in qs]
        return [float(v) for v in np.percentile(self._lat_arrays()[0],
                                                list(qs))]

    def percentiles_ttft_s(self, qs: Sequence[float]) -> List[float]:
        """Several TTFT percentiles in one pass over the cached array."""
        sketch = self._sketch
        if sketch is not None:
            return sketch.percentiles_ttft_s(qs)
        if not self.records:
            return [0.0 for _ in qs]
        return [float(v) for v in np.percentile(self._lat_arrays()[1],
                                                list(qs))]

    def mean_time_per_token_s(self) -> float:
        sketch = self._sketch
        if sketch is not None:
            return sketch.mean_time_per_token_s()
        if not self.records:
            return 0.0
        return float(np.mean(self._lat_arrays()[2]))

    def slo_attainment(self, slo_s: float, metric: str = "e2e") -> float:
        """Fraction of requests meeting an SLO threshold; exact on
        retained records, sketch-approximate (within the relative error
        around the threshold) when records were dropped."""
        sketch = self._sketch
        if sketch is not None:
            return sketch.slo_attainment(slo_s, metric=metric)
        return slo_attainment(self.records, slo_s, metric=metric)

    def summary(self) -> Dict[str, float]:
        return summarize(self)


def slo_attainment(records: Sequence[RequestRecord], slo_s: float,
                   metric: str = "e2e") -> float:
    """Fraction of requests meeting an SLO threshold (Fig 13/19)."""
    if not records:
        return 0.0
    if metric == "e2e":
        values = [r.e2e_latency_s for r in records]
    elif metric == "ttft":
        values = [r.ttft_s for r in records]
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return float(np.mean([v <= slo_s for v in values]))


def summarize(result: ServingResult) -> Dict[str, float]:
    p50_e2e, p90_e2e, p99_e2e = result.percentiles_e2e_s((50, 90, 99))
    p50_ttft, p90_ttft, p99_ttft = result.percentiles_ttft_s((50, 90, 99))
    return {
        "n_requests": float(result.n_requests),
        "n_finished": float(result.n_finished),
        "throughput_rps": result.throughput_rps(),
        "goodput_rps": result.goodput_rps(),
        "wasted_token_fraction": result.wasted_token_fraction(),
        "token_throughput": result.token_throughput(),
        "mean_e2e_s": result.mean_e2e_latency_s(),
        "p50_e2e_s": p50_e2e,
        "p90_e2e_s": p90_e2e,
        "p99_e2e_s": p99_e2e,
        "mean_ttft_s": result.mean_ttft_s(),
        "p50_ttft_s": p50_ttft,
        "p90_ttft_s": p90_ttft,
        "p99_ttft_s": p99_ttft,
        "mean_time_per_token_s": result.mean_time_per_token_s(),
        "makespan_s": result.makespan_s,
    }


def summarize_by_tenant(result: ServingResult) -> Dict[str, Dict[str, float]]:
    """Per-tenant summary rows keyed by tenant id."""
    return {tenant: summarize(sliced)
            for tenant, sliced in result.by_tenant().items()}


def slo_attainment_by_tenant(records: Sequence[RequestRecord], slo_s: float,
                             metric: str = "ttft") -> Dict[str, float]:
    """Per-tenant fraction of requests meeting one shared SLO threshold."""
    groups: Dict[str, List[RequestRecord]] = {}
    for rec in records:
        groups.setdefault(rec.tenant_id or UNTENANTED, []).append(rec)
    return {tenant: slo_attainment(group, slo_s, metric=metric)
            for tenant, group in sorted(groups.items())}


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations.

    1.0 when every tenant gets the same share, 1/n under total capture by
    one tenant.  Empty or all-zero inputs are defined as perfectly fair
    (nothing was allocated unevenly).
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom
