"""Cluster serving layer: replicated gateways, load balancing, autoscaling.

PR 1 made every engine an online submit/step system behind a
:class:`~repro.serving.gateway.ServingGateway` — for a single replica on a
single node.  This module scales that surface out:

* :class:`Replica` — one engine + gateway on its own :class:`GPUNode`;
* :class:`LoadBalancer` policies (:data:`BALANCERS` registry):
  ``round-robin``, ``least-outstanding``, and ``lineage`` session affinity
  that keeps a variant's delta resident on the replica that already paid to
  load it;
* :class:`Autoscaler` — a queue-depth / TTFT-watermark controller with
  cooldowns that spawns and drains replicas at runtime through the engine
  factory and the multi-node :class:`~repro.hardware.cluster.Cluster`;
* :class:`ClusterGateway` — the same ``submit`` / ``step`` /
  ``run_until_drained`` / ``replay`` surface as a single gateway, so
  clients are replica-count-agnostic.

Time is owned by the :mod:`repro.sim` kernel: the gateway holds a
:class:`~repro.sim.SimKernel` whose monotone clock is the cluster
*frontier* (the least busy-replica clock — the single "now" that
routing, autoscaling, and the admission layer above all read), keeps
unrouted trace requests as :class:`~repro.sim.Arrival` events in an
:class:`~repro.sim.EventQueue`, and schedules the autoscaler as
:class:`~repro.sim.AutoscalerTick` events instead of polling it after
every step.  Replicas remain independent discrete-event machines with
their own local clocks (each models its own hardware timeline); the
cluster advances the least-advanced replica that has work, so
per-replica results are identical to running each replica's request
stream on a standalone gateway regardless of interleaving.

Multi-tenant admission control (token buckets, per-tenant quotas, VTC
fair queueing, SLO-aware shedding) sits *in front of* this gateway:
:class:`repro.serving.tenancy.TenantGateway` wraps a cluster gateway,
holds requests at the cluster frontier, and releases the admitted ones
through :meth:`ClusterGateway.ingest`; completions flow back through
:meth:`ClusterGateway.add_completion_listener`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Callable, Deque, Dict, List, Optional, Sequence, Tuple,
                    Type, Union)

import numpy as np

from ..hardware.cluster import Cluster, GPUNode
from ..sim import (Arrival, AutoscalerTick, EventQueue, ReplicaDrain,
                   ReplicaSpawn, SimKernel)
from ..workload.spec import Trace, TraceRequest
from .base import ServingEngine
from .gateway import (CancelSchedule, CompletionCallback, ServingGateway,
                      TokenCallback)
from .handle import HandleStatus, RequestHandle
from .metrics import ServingResult
from .request import RequestRecord, synthesized_abort_record
from .streaming_metrics import RecordPolicy

__all__ = [
    "Replica", "LoadBalancer", "RoundRobinBalancer",
    "LeastOutstandingBalancer", "LineageAffinityBalancer",
    "ConversationAffinityBalancer",
    "BALANCERS", "create_balancer",
    "AutoscalerConfig", "AutoscalerSample", "Autoscaler",
    "ClusterGateway",
]

#: builds one engine on the node a replica was allocated
EngineFactory = Callable[[GPUNode], ServingEngine]


class Replica:
    """One serving replica: an engine + gateway, optionally on a node."""

    def __init__(self, replica_id: int, engine: ServingEngine,
                 name: Optional[str] = None, node: Optional[GPUNode] = None,
                 on_token: Optional[TokenCallback] = None,
                 on_request_complete: Optional[CompletionCallback] = None,
                 collect_timeline: bool = False):
        self.id = replica_id
        self.name = name or f"replica-{replica_id}"
        self.node = node
        self.gateway = ServingGateway(
            engine, on_token=on_token,
            on_request_complete=on_request_complete,
            collect_timeline=collect_timeline)
        self.draining = False

    @property
    def engine(self) -> ServingEngine:
        return self.gateway.engine

    @property
    def clock(self) -> float:
        return self.gateway.clock

    @property
    def unfinished(self) -> int:
        return self.gateway.unfinished

    @property
    def backlog(self) -> int:
        return self.gateway.backlog

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self.draining else "active"
        return (f"Replica({self.name}, {state}, "
                f"unfinished={self.unfinished}, clock={self.clock:.1f})")


# --------------------------------------------------------------------------- #
# load-balancing policies
# --------------------------------------------------------------------------- #
class LoadBalancer:
    """Chooses the replica that serves each submitted request.

    ``conversation_id`` names the session a request belongs to; the
    gateway passes it *only when the request carries one*, so balancer
    subclasses written before sessions existed (without the keyword)
    keep working on session-free traffic.
    """

    name: str = "abstract"

    def choose(self, model_id: str, replicas: Sequence[Replica],
               conversation_id: Optional[str] = None) -> Replica:
        """Pick one of the eligible (non-draining) replicas."""
        raise NotImplementedError

    def on_removed(self, replica: Replica,
                   survivors: Sequence[Replica] = ()) -> None:
        """A replica left the set (drained); drop any state pinned to
        it.  ``survivors`` is the remaining active set, so policies that
        keep residency state can migrate it instead of just dropping."""

    def on_abandoned(self, model_id: str,
                     conversation_id: Optional[str] = None) -> None:
        """A request for this model (and session, when tagged) was
        cancelled/expired; policies that learned an affinity from it may
        drop that state so abandoned work does not keep a variant — or a
        dead conversation — pinned to a replica."""

    def reset(self) -> None:
        """Forget per-run routing state (rotation position, learned
        affinities) so repeated replays stay deterministic.  Explicitly
        pinned assignments survive."""


class RoundRobinBalancer(LoadBalancer):
    """Rotate through replicas regardless of load or residency."""

    name = "round-robin"

    def __init__(self):
        self._turn = 0

    def choose(self, model_id: str, replicas: Sequence[Replica],
               conversation_id: Optional[str] = None) -> Replica:
        replica = replicas[self._turn % len(replicas)]
        self._turn += 1
        return replica

    def reset(self) -> None:
        self._turn = 0


class LeastOutstandingBalancer(LoadBalancer):
    """Send each request to the replica with the fewest unfinished
    requests (join-the-shortest-queue; ties break on replica id)."""

    name = "least-outstanding"

    def choose(self, model_id: str, replicas: Sequence[Replica],
               conversation_id: Optional[str] = None) -> Replica:
        return min(replicas, key=lambda r: (r.unfinished, r.id))


class LineageAffinityBalancer(LoadBalancer):
    """Load-and-residency routing: requests for the same affinity key
    prefer the replica(s) where that key's delta is already resident,
    but spill to a less-loaded replica when the residency advantage is
    outweighed by queue imbalance.

    Each eligible replica is scored ``outstanding + affinity_bias *
    (not home)`` (ties break on replica id): a non-home replica wins
    only when it is more than ``affinity_bias`` requests ahead.  A
    spill *teaches* the key a secondary home — the delta is swapped
    onto the spill target, so it is genuinely resident there from then
    on (replicated hot deltas).

    ``owner_of`` maps a model id to its affinity key — identity by default
    (per-variant stickiness); the multi-base router passes its lineage
    lookup so every variant of one base lands on that base's replica.
    Unseen keys fall through to a least-outstanding choice; ``pin`` fixes a
    key's home up front.

    When a home replica drains, keys with a surviving secondary home
    promote it for free (the delta is already there); sole-residency
    keys migrate to the least-loaded survivor, pricing the artifact
    move over the interconnect via
    :meth:`~repro.serving.engine.DeltaZipEngine.receive_delta`.
    """

    name = "lineage"

    def __init__(self, owner_of: Optional[Callable[[str], str]] = None,
                 fallback: Optional[LoadBalancer] = None,
                 affinity_bias: float = 4.0):
        if affinity_bias <= 0:
            raise ValueError("affinity_bias must be > 0")
        self._owner_of = owner_of or (lambda model_id: model_id)
        self._fallback = fallback or LeastOutstandingBalancer()
        self._affinity_bias = affinity_bias
        self._pinned: Dict[str, Replica] = {}
        self._home: Dict[str, Replica] = {}
        self._secondary: Dict[str, List[Replica]] = {}
        self._conv_home: Dict[str, Replica] = {}

    def pin(self, key: str, replica: Replica) -> None:
        """Fix an affinity key's home replica (survives :meth:`reset`)."""
        self._pinned[key] = replica

    def _valid_homes(self, key: str,
                     replicas: Sequence[Replica]) -> List[Replica]:
        """The key's residencies that are still routable, primary first."""
        candidates: List[Optional[Replica]] = [
            self._pinned.get(key), self._home.get(key)]
        candidates.extend(self._secondary.get(key, ()))
        homes: List[Replica] = []
        for cand in candidates:
            if cand is not None and not cand.draining \
                    and any(r is cand for r in replicas) \
                    and not any(h is cand for h in homes):
                homes.append(cand)
        return homes

    def choose(self, model_id: str, replicas: Sequence[Replica],
               conversation_id: Optional[str] = None) -> Replica:
        if conversation_id is not None:
            # session turns outrank lineage: the conversation's prefix KV
            # lives on the replica that served its earlier turns
            conv = self._conv_home.get(conversation_id)
            if conv is not None and not conv.draining \
                    and any(r is conv for r in replicas):
                return conv
        key = self._owner_of(model_id)
        homes = self._valid_homes(key, replicas)
        if not homes:
            chosen = self._fallback.choose(model_id, replicas)
            self._home[key] = chosen
        else:
            bias = self._affinity_bias
            chosen = min(replicas, key=lambda r: (
                r.unfinished + (0.0 if any(h is r for h in homes)
                                else bias), r.id))
            if not any(h is chosen for h in homes):
                # load outweighed residency; the swap-in makes the delta
                # resident here too, so remember the replication
                self._secondary.setdefault(key, []).append(chosen)
        if conversation_id is not None:
            self._conv_home[conversation_id] = chosen
        return chosen

    def on_removed(self, replica: Replica,
                   survivors: Sequence[Replica] = ()) -> None:
        self._pinned = {k: r for k, r in self._pinned.items()
                        if r is not replica}
        self._conv_home = {k: r for k, r in self._conv_home.items()
                           if r is not replica}
        orphaned = sorted(k for k, r in self._home.items()
                          if r is replica)
        self._home = {k: r for k, r in self._home.items()
                      if r is not replica}
        for key in list(self._secondary):
            kept = [r for r in self._secondary[key] if r is not replica]
            if kept:
                self._secondary[key] = kept
            else:
                del self._secondary[key]
        alive = [r for r in survivors
                 if not r.draining and r is not replica]
        for key in orphaned:
            extras = self._secondary.get(key)
            if extras:
                # a surviving residency already holds the delta: free
                new_home = min(extras, key=lambda r: (r.unfinished, r.id))
                rest = [r for r in extras if r is not new_home]
                if rest:
                    self._secondary[key] = rest
                else:
                    del self._secondary[key]
            elif alive:
                # sole residency drained: migrate the artifact, priced
                # as a peer-to-peer move over the interconnect
                new_home = min(alive, key=lambda r: (r.unfinished, r.id))
                receive = getattr(new_home.engine, "receive_delta", None)
                if receive is not None:
                    try:
                        receive(key, new_home.engine.clock)
                    except KeyError:
                        pass    # affinity key is not a model id
            else:
                continue
            self._home[key] = new_home

    def on_abandoned(self, model_id: str,
                     conversation_id: Optional[str] = None) -> None:
        # a cancelled request must not keep its variant's learned home
        # alive: the next request re-homes by load (explicit pins stay).
        # Conversation keys unpin too, so a drained/abandoned session
        # stops attracting its dead turns to one replica.
        key = self._owner_of(model_id)
        self._home.pop(key, None)
        self._secondary.pop(key, None)
        if conversation_id is not None:
            self._conv_home.pop(conversation_id, None)

    def reset(self) -> None:
        self._home.clear()
        self._secondary.clear()
        self._conv_home.clear()


class ConversationAffinityBalancer(LoadBalancer):
    """Conversation affinity: every turn of a session lands on the
    replica that served its earlier turns — the replica whose prefix
    cache holds that conversation's KV blocks (see
    :mod:`repro.serving.prefix_cache`), so repeat turns hit instead of
    re-prefilling on a cold replica.

    Session-free requests (no ``conversation_id``) fall through to a
    least-outstanding choice, as does the *first* turn of each session
    (which then learns its home).  Homes unpin when their replica drains
    (:meth:`on_removed`) and when a session's request is abandoned
    (:meth:`on_abandoned`), so dead sessions stop steering load.
    """

    name = "conversation"

    def __init__(self, fallback: Optional[LoadBalancer] = None):
        self._fallback = fallback or LeastOutstandingBalancer()
        self._home: Dict[str, Replica] = {}

    def choose(self, model_id: str, replicas: Sequence[Replica],
               conversation_id: Optional[str] = None) -> Replica:
        if conversation_id is None:
            return self._fallback.choose(model_id, replicas)
        home = self._home.get(conversation_id)
        if home is not None and not home.draining \
                and any(r is home for r in replicas):
            return home
        chosen = self._fallback.choose(model_id, replicas)
        self._home[conversation_id] = chosen
        return chosen

    def on_removed(self, replica: Replica,
                   survivors: Sequence[Replica] = ()) -> None:
        self._home = {k: r for k, r in self._home.items()
                      if r is not replica}

    def on_abandoned(self, model_id: str,
                     conversation_id: Optional[str] = None) -> None:
        if conversation_id is not None:
            self._home.pop(conversation_id, None)

    def reset(self) -> None:
        self._home.clear()


BALANCERS: Dict[str, Type[LoadBalancer]] = {
    cls.name: cls for cls in (RoundRobinBalancer, LeastOutstandingBalancer,
                              LineageAffinityBalancer,
                              ConversationAffinityBalancer)
}


def create_balancer(policy: Union[str, LoadBalancer], **kwargs) -> LoadBalancer:
    """A balancer instance from a policy name (or pass one through)."""
    if isinstance(policy, LoadBalancer):
        return policy
    if policy not in BALANCERS:
        raise KeyError(f"unknown balancer {policy!r}; "
                       f"registered: {sorted(BALANCERS)}")
    return BALANCERS[policy](**kwargs)


# --------------------------------------------------------------------------- #
# autoscaling
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AutoscalerConfig:
    """Watermark controller knobs.

    Scale up when the *offered* backlog per active replica — engine
    backlog plus any requests an admission layer holds at the cluster
    frontier (see :meth:`ClusterGateway.set_admission_probe`) — exceeds
    ``high_queue_per_replica`` (or recent TTFT tail exceeds
    ``ttft_high_s``); scale down when it drops below
    ``low_queue_per_replica``.  Cooldowns stop the controller from
    flapping on bursty arrivals.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    high_queue_per_replica: float = 8.0
    low_queue_per_replica: float = 1.0
    ttft_high_s: Optional[float] = None     # watermark on recent TTFT tail
    ttft_quantile: float = 90.0
    check_interval_s: float = 2.0
    scale_up_cooldown_s: float = 5.0
    scale_down_cooldown_s: float = 30.0

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.low_queue_per_replica >= self.high_queue_per_replica:
            raise ValueError("low watermark must sit below the high one")


@dataclass
class AutoscalerSample:
    """One controller observation (kept for tests and benchmarks)."""

    clock_s: float
    n_replicas: int
    queue_per_replica: float
    ttft_tail_s: float
    action: Optional[str] = None    # "scale_up" | "scale_down" | None


class Autoscaler:
    """Queue-driven replica controller for a :class:`ClusterGateway`.

    The gateway schedules the controller as
    :class:`~repro.sim.AutoscalerTick` events on its sim kernel — one
    tick every ``check_interval_s`` of simulated time — and each fired
    tick calls :meth:`control`, which spawns/drains replicas through the
    gateway.  Observations happen at the *kernel clock* (the cluster
    frontier, :attr:`ClusterGateway.frontier`): the max-of-replicas
    clock used previously runs ahead of the frontier whenever replica
    clocks skew, which silently stretched check intervals and cooldowns
    (see the skewed-clock regression test).  The queue signal is
    admission-aware: requests a tenancy layer holds at the frontier
    (:attr:`ClusterGateway.admission_queued`) count as offered load, so
    the cluster scales before shedding kicks in rather than after.
    """

    def __init__(self, config: Optional[AutoscalerConfig] = None, **kwargs):
        if config is not None and kwargs:
            raise ValueError("pass either an AutoscalerConfig or kwargs")
        self.config = config or AutoscalerConfig(**kwargs)
        self.history: List[AutoscalerSample] = []
        self._last_check: Optional[float] = None
        self._last_up: Optional[float] = None
        self._last_down: Optional[float] = None

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.history.clear()
        self._last_check = self._last_up = self._last_down = None

    @property
    def max_replica_count(self) -> int:
        return max((s.n_replicas for s in self.history), default=0)

    def control(self, gateway: "ClusterGateway") -> Optional[str]:
        # observe at the monotone kernel clock (the ratcheted frontier),
        # not the most-advanced replica: a replica that raced ahead must
        # not fast-forward the controller's notion of elapsed time, and
        # an idle-moment fallback to the max clock must not leave
        # _last_check stamped ahead of later frontier observations
        now = gateway.sim_now
        cfg = self.config
        if self._last_check is not None and \
                now - self._last_check < cfg.check_interval_s:
            return None
        self._last_check = now

        active = gateway.active_replicas()
        n = len(active)
        # backlog, not unfinished: replayed traces submit far-future
        # arrivals up front, and the controller must not scale on load
        # that has not been offered yet.  Admission-held requests count:
        # they are offered load the engines cannot see.
        offered = sum(r.backlog for r in active) + \
            getattr(gateway, "admission_queued", 0)
        queue_per = offered / max(n, 1)
        ttft_tail = gateway.recent_ttft_percentile(cfg.ttft_quantile)

        action = None
        overloaded = queue_per > cfg.high_queue_per_replica or \
            (cfg.ttft_high_s is not None and ttft_tail > cfg.ttft_high_s)
        idle = queue_per < cfg.low_queue_per_replica and \
            (cfg.ttft_high_s is None or ttft_tail <= cfg.ttft_high_s)
        if overloaded and n < cfg.max_replicas and \
                self._cooled(self._last_up, now, cfg.scale_up_cooldown_s):
            gateway.spawn_replica()
            self._last_up = now
            action = "scale_up"
        elif idle and n > cfg.min_replicas and \
                self._cooled(self._last_down, now, cfg.scale_down_cooldown_s) \
                and self._cooled(self._last_up, now, cfg.scale_down_cooldown_s):
            gateway.drain_replica()
            self._last_down = now
            action = "scale_down"

        self.history.append(AutoscalerSample(
            clock_s=now, n_replicas=len(gateway.active_replicas()),
            queue_per_replica=queue_per, ttft_tail_s=ttft_tail,
            action=action))
        return action

    @staticmethod
    def _cooled(last: Optional[float], now: float, cooldown_s: float) -> bool:
        return last is None or now - last >= cooldown_s


# --------------------------------------------------------------------------- #
# the cluster gateway
# --------------------------------------------------------------------------- #
class ClusterGateway:
    """Replica-count-agnostic serving frontend over a set of replicas.

    Exposes the single-gateway surface — ``submit`` / ``step`` /
    ``run_until_drained`` / ``replay`` / ``result`` — over any number of
    :class:`Replica`\\ s.  Construct it either from an ``engine_factory``
    plus a hardware :class:`~repro.hardware.cluster.Cluster` (homogeneous
    replicas, autoscalable) or from pre-built engines via
    :meth:`from_engines` (heterogeneous replicas, e.g. one per base model).
    """

    def __init__(self, engine_factory: Optional[EngineFactory] = None,
                 cluster: Optional[Cluster] = None,
                 n_replicas: int = 1,
                 balancer: Union[str, LoadBalancer] = "least-outstanding",
                 autoscaler: Optional[Autoscaler] = None,
                 on_token: Optional[TokenCallback] = None,
                 on_request_complete: Optional[CompletionCallback] = None,
                 collect_timeline: bool = False,
                 journal: bool = False,
                 telemetry=None,
                 _replicas: Optional[List[Replica]] = None):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        # the one clock: kernel time is the cluster frontier, and every
        # cross-layer event (spawns, drains, autoscaler ticks, engine
        # iterations when journaling) flows through it
        self.kernel = SimKernel(journal=journal)
        self.balancer = create_balancer(balancer)
        self.autoscaler = autoscaler
        self._factory = engine_factory
        self._cluster = cluster
        self._on_token = on_token
        self._on_complete = on_request_complete
        self._collect_timeline = collect_timeline
        self._journal = journal
        self._telemetry = None
        self._next_id = 0
        self._next_replica_id = 0
        # trace requests awaiting routing: replay defers each routing
        # decision until the simulation frontier reaches the arrival, so
        # balancers and the autoscaler see the load actually offered so far
        self._unrouted = EventQueue()     # Arrival events on the kernel
        self._ticks = EventQueue()        # scheduled AutoscalerTicks
        self._admission_probe: Optional[Callable[[], int]] = None
        self._listeners: List[CompletionCallback] = []
        self._token_listeners: List[TokenCallback] = []
        self._token_tap = False           # replica token fanout installed?
        self._handles: Dict[int, RequestHandle] = {}
        self._owner: Dict[int, Replica] = {}       # routed request -> replica
        self._pending_cancels: Dict[int, Tuple[float, str]] = {}
        self._orphans: List[RequestRecord] = []    # cancelled before routing
        self._recent_records: Deque[RequestRecord] = deque(maxlen=256)
        self.replicas: List[Replica] = []
        self.retired: List[Replica] = []
        if _replicas is not None:
            for replica in _replicas:
                self.replicas.append(replica)
                self._next_replica_id = max(self._next_replica_id,
                                            replica.id + 1)
        else:
            if engine_factory is None:
                raise ValueError(
                    "pass an engine_factory (or use from_engines)")
            if autoscaler is not None:
                n_replicas = max(n_replicas, autoscaler.config.min_replicas)
            ceiling = n_replicas if autoscaler is None else \
                max(n_replicas, autoscaler.config.max_replicas)
            if cluster is not None and cluster.n_nodes < ceiling:
                raise ValueError(
                    f"cluster has {cluster.n_nodes} nodes but up to "
                    f"{ceiling} replicas were requested")
            for _ in range(n_replicas):
                self.spawn_replica()
        self._schedule_tick(0.0)
        if telemetry is not None:
            telemetry.attach_cluster(self)

    @property
    def telemetry(self):
        """The attached :class:`repro.telemetry.Telemetry`, or None."""
        return self._telemetry

    @classmethod
    def from_engines(cls, engines: Sequence[ServingEngine],
                     names: Optional[Sequence[str]] = None,
                     balancer: Union[str, LoadBalancer] = "least-outstanding",
                     on_token: Optional[TokenCallback] = None,
                     on_request_complete: Optional[CompletionCallback] = None,
                     collect_timeline: bool = False) -> "ClusterGateway":
        """A fixed replica set over pre-built (possibly heterogeneous)
        engines; replica *i* is named ``names[i]`` when given."""
        if not engines:
            raise ValueError("need at least one engine")
        if names is not None and len(names) != len(engines):
            raise ValueError("names must match engines one-to-one")
        gateway = cls(balancer=balancer, on_token=on_token,
                      on_request_complete=on_request_complete,
                      collect_timeline=collect_timeline, _replicas=[])
        for i, engine in enumerate(engines):
            name = names[i] if names is not None else None
            gateway._add_replica(engine, name=name)
        return gateway

    # ------------------------------------------------------------------ #
    # replica-set management
    # ------------------------------------------------------------------ #
    def active_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if not r.draining]

    @property
    def n_replicas(self) -> int:
        return len(self.active_replicas())

    def spawn_replica(self) -> Replica:
        """Bring one more replica online at the current cluster clock.

        A still-draining replica is revived instead of spawning a fresh
        one: it is strictly cheaper (no cold start, deltas still
        resident) and keeps the node count flat — which is what makes
        scale-up safe when draining replicas still hold their nodes.
        """
        draining = [r for r in self.replicas if r.draining]
        if draining:
            revived = max(draining, key=lambda r: r.id)   # youngest first
            revived.draining = False
            self.kernel.emit(ReplicaSpawn(time=self.kernel.now,
                                          replica_id=revived.id,
                                          revived=True))
            return revived
        if self._factory is None:
            raise RuntimeError(
                "this gateway has a fixed replica set (no engine factory)")
        node = self._cluster.acquire() if self._cluster is not None else None
        engine = self._factory(node) if node is not None \
            else self._factory(None)
        # the new replica joins *now*: its private clock starts at the
        # cluster clock so cold-start latencies are measured from spawn
        engine.clock = max(engine.clock, self.clock)
        return self._add_replica(engine, node=node)

    def drain_replica(self, replica: Optional[Replica] = None) -> Replica:
        """Stop routing to one replica; it is retired once it drains."""
        if replica is not None and replica.draining:
            return replica
        active = self.active_replicas()
        if len(active) <= 1:
            raise RuntimeError("cannot drain the last active replica")
        if replica is None:
            # cheapest to retire: least outstanding work; on ties the
            # youngest goes first (spawned last, drained first)
            replica = min(active, key=lambda r: (r.unfinished, -r.id))
        replica.draining = True
        self.kernel.emit(ReplicaDrain(time=self.kernel.now,
                                      replica_id=replica.id))
        self.balancer.on_removed(replica, self.active_replicas())
        self._reap_drained()
        return replica

    def _add_replica(self, engine: ServingEngine,
                     name: Optional[str] = None,
                     node: Optional[GPUNode] = None) -> Replica:
        replica = Replica(self._next_replica_id, engine, name=name,
                          node=node, on_token=self._on_token,
                          on_request_complete=self._record_completion,
                          collect_timeline=self._collect_timeline)
        self._next_replica_id += 1
        self.replicas.append(replica)
        if self._token_tap:
            replica.gateway.add_token_listener(self._token_fanout)
        if self._journal or self._telemetry is not None:
            # publish engine iterations (and cancels) into the journal
            # and/or onward to the telemetry layer
            engine.on_event = self.kernel.emit
        if self._telemetry is not None:
            engine.emit_phases = True
        self.kernel.emit(ReplicaSpawn(time=self.kernel.now,
                                      replica_id=replica.id))
        return replica

    def _reap_drained(self) -> None:
        for replica in [r for r in self.replicas
                        if r.draining and r.unfinished == 0]:
            self.replicas.remove(replica)
            self.retired.append(replica)
            if self._cluster is not None and replica.node is not None:
                self._cluster.release(replica.node)

    # ------------------------------------------------------------------ #
    # the single-gateway surface
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> float:
        """The most-advanced replica's clock (the makespan frontier)."""
        return max((r.clock for r in self.replicas + self.retired),
                   default=0.0)

    @property
    def frontier(self) -> float:
        """The least busy-replica clock — the point the simulation cannot
        retreat behind while work is in flight.  Routing and the
        admission layer above observe *this* "now": unlike :attr:`clock`
        a single fast replica does not drag it forward.  With no busy
        replica it falls back to :attr:`clock` (where the cluster last
        stopped), which can sit ahead of where a lagging replica resumes;
        consumers needing strict monotonicity use :attr:`sim_now`."""
        busy = [r.clock for r in self.replicas if r.unfinished > 0]
        return min(busy) if busy else self.clock

    @property
    def sim_now(self) -> float:
        """The monotone kernel clock: :attr:`frontier` ratcheted forward.
        This is the autoscaler's observation clock — it reflects frontier
        progress even between steps, but never runs backward across an
        idle fallback."""
        return self.kernel.advance(self.frontier)

    @property
    def unfinished(self) -> int:
        return sum(r.unfinished for r in self.replicas) + \
            len(self._unrouted)

    @property
    def backlog(self) -> int:
        """Cluster-wide arrived-but-unfinished requests."""
        return sum(r.backlog for r in self.replicas)

    @property
    def record_policy(self) -> RecordPolicy:
        """The replicas' shared record-retention policy (all replicas are
        spawned from one engine-config template)."""
        pool = self.replicas or self.retired
        if not pool:
            return RecordPolicy.KEEP_ALL
        return pool[0].engine.config.record_policy

    def submit(self, model_id: str, prompt_len: int, output_len: int,
               arrival_s: Optional[float] = None,
               tenant_id: Optional[str] = None,
               deadline_s: Optional[float] = None,
               conversation_id: Optional[str] = None) -> RequestHandle:
        """Submit one request; the balancer picks its replica.

        Returns a :class:`~repro.serving.handle.RequestHandle` streaming
        this request's tokens across whichever replica serves it;
        ``deadline_s`` (relative to arrival) bounds its completion.
        ``conversation_id`` tags the request as one turn of a session:
        affinity balancers route it to the session's home replica, whose
        prefix cache (when enabled) skips re-prefilling the shared
        history.
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 when set")
        active = self.active_replicas()
        if not active:
            raise RuntimeError("no active replicas")
        if arrival_s is None:
            arrival_s = self.clock
        absolute_deadline = None if deadline_s is None \
            else float(arrival_s) + float(deadline_s)
        request = TraceRequest(request_id=self._next_id, model_id=model_id,
                               arrival_s=float(arrival_s),
                               prompt_tokens=int(prompt_len),
                               output_tokens=int(output_len),
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline,
                               conversation_id=conversation_id)
        self._next_id += 1
        handle = RequestHandle(request.request_id, self, model_id,
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline)
        self._handles[request.request_id] = handle
        self._install_token_tap()
        replica = self._choose_replica(request, active)
        replica.gateway.ingest(request)
        self._owner[request.request_id] = replica
        return handle

    def _choose_replica(self, request: TraceRequest,
                        active: List[Replica]) -> Replica:
        """One routing decision.  The conversation keyword is passed only
        when the request carries a session tag, so balancer subclasses
        predating sessions keep working on session-free traffic."""
        if request.conversation_id is not None:
            return self.balancer.choose(
                request.model_id, active,
                conversation_id=request.conversation_id)
        return self.balancer.choose(request.model_id, active)

    def cancel(self, request_id: int, at_s: Optional[float] = None,
               reason: str = "cancel") -> None:
        """Cancel one request at simulated time ``at_s`` (default: now).

        Routed requests forward the cancel to their owning replica's
        engine (freeing its batch slot there); not-yet-routed requests
        carry the cancel with them — applied by the owning engine after
        routing, or retired as an orphaned record when the cancel time
        precedes the arrival (the request never enters a replica, and
        the lineage balancer never pins its abandoned work).
        """
        rid = int(request_id)
        if at_s is None:
            at_s = self.sim_now
        owner = self._owner.get(rid)
        if owner is not None:
            owner.gateway.cancel(rid, at_s=at_s, reason=reason)
        else:
            self._pending_cancels[rid] = (float(at_s), reason)

    def handle(self, request_id: int) -> Optional[RequestHandle]:
        """The handle for a request submitted through this gateway."""
        return self._handles.get(int(request_id))

    def ingest(self, request: TraceRequest) -> int:
        """Accept a fully-formed :class:`TraceRequest` verbatim.

        Preserves the caller's request id and arrival time; the request is
        routed once the simulation frontier reaches its arrival (see
        :meth:`_route_due`), exactly like trace replay.  This is the entry
        point the admission layer releases requests through.
        """
        self._unrouted.push(Arrival(time=request.arrival_s, request=request))
        self._next_id = max(self._next_id, request.request_id + 1)
        return request.request_id

    def add_completion_listener(self, listener: CompletionCallback) -> None:
        """Register an extra per-request completion callback (fires after
        the constructor's ``on_request_complete``); used by the admission
        layer in :mod:`repro.serving.tenancy`."""
        self._listeners.append(listener)

    def add_token_listener(self, listener: TokenCallback) -> None:
        """Register a per-token callback spanning every replica — the
        streaming parity of :meth:`add_completion_listener`.  Survives
        :meth:`reset`."""
        self._token_listeners.append(listener)
        self._install_token_tap()

    def _install_token_tap(self) -> None:
        """Lazily fan replica token callbacks into cluster-level
        listeners and handles (installed on demand so replay paths
        without handles pay no per-token overhead)."""
        if self._token_tap:
            return
        self._token_tap = True
        for replica in self.replicas + self.retired:
            replica.gateway.add_token_listener(self._token_fanout)

    def _token_fanout(self, request_id: int, model_id: str,
                      n_generated: int, clock: float) -> None:
        for listener in self._token_listeners:
            listener(request_id, model_id, n_generated, clock)
        handle = self._handles.get(request_id)
        if handle is not None:
            handle._push_token(clock, n_generated)

    def set_admission_probe(self, probe: Callable[[], int]) -> None:
        """Let an admission layer report requests held at its frontier.

        The autoscaler adds the probe's count to the engine backlog, so
        the cluster scales on *offered* load — requests an admission
        controller is still holding back are otherwise invisible to the
        engines and the controller would scale too late (only after
        shedding already kicked in)."""
        self._admission_probe = probe

    @property
    def admission_queued(self) -> int:
        """Requests an admission layer holds at the cluster frontier."""
        return self._admission_probe() if self._admission_probe is not None \
            else 0

    def step(self) -> bool:
        """Advance the least-advanced replica that has work by one engine
        iteration; False once no replica can make progress (all drained,
        past their sim-time cap, or wedged on inadmissible requests)."""
        self._route_due()
        best: Optional[Replica] = None
        for r in self.replicas:
            if r.unfinished > 0 and \
                    r.clock < r.engine.config.max_sim_seconds and \
                    (best is None or (r.clock, r.id) < (best.clock, best.id)):
                best = r
        if best is not None:
            if best.gateway.step():
                return self._made_progress()
            # the least-advanced replica is wedged: fall through to the
            # rest in (clock, id) order, matching the pre-kernel scan
            rest = sorted(
                (r for r in self.replicas
                 if r is not best and r.unfinished > 0
                 and r.clock < r.engine.config.max_sim_seconds),
                key=lambda r: (r.clock, r.id))
            for replica in rest:
                if replica.gateway.step():
                    return self._made_progress()
        self._reap_drained()
        return False

    def _made_progress(self) -> bool:
        """Post-step bookkeeping: advance the kernel clock to the new
        frontier and fire any autoscaler tick it has reached."""
        self._reap_drained()
        now = max(self.kernel.now, self.frontier)
        fired = False
        if self.autoscaler is not None:
            if not self._ticks:
                # an autoscaler attached after construction still gets
                # its first tick (due immediately, like at reset)
                self._schedule_tick(now)
            if self._ticks.peek_time() <= now:
                # journal fired ticks *before* advancing the kernel past
                # them: a tick is never emitted behind the kernel clock
                # (the sanitizer's no-past-events invariant)
                for tick in self._ticks.pop_due(now):
                    self.kernel.emit(tick)
                fired = True
        self.kernel.advance(now)
        if fired:
            self.autoscaler.control(self)
            self._schedule_tick(now + self.autoscaler.config.check_interval_s)
        if self._telemetry is not None:
            # after all emissions for this step (including autoscaler
            # spawns/drains) so forwarded kernel-timeline events never
            # land behind the telemetry clock
            self._telemetry.advance(now)
        return True

    def _schedule_tick(self, at: float) -> None:
        if self.autoscaler is not None:
            self._ticks.push(AutoscalerTick(time=at))

    def _route_due(self) -> None:
        """Route unrouted trace requests the frontier has reached.

        The frontier is the kernel clock (least busy-replica clock) — the
        cluster never simulates a replica below it, so routing everything
        due by then (in arrival order) gives each replica its requests
        before it could step past their arrival, and no earlier.  With
        every replica idle the next arrival group is released to restart
        the clocks: the cluster-level idle-skip.

        A request whose scheduled cancel precedes its arrival never
        reaches a replica: it retires as an orphaned cancelled/expired
        record, consumes no balancer choice, and — when every due request
        was such an orphan while all replicas idle — the next arrival
        group is released immediately so the drain cannot wedge.
        """
        while self._unrouted:
            busy = [r.clock for r in self.replicas if r.unfinished > 0]
            frontier = min(busy) if busy else self._unrouted.peek_time()
            routed_any = False
            for event in self._unrouted.pop_due(frontier):
                request = event.request
                pending = self._pending_cancels.pop(request.request_id, None)
                if pending is not None and pending[0] <= request.arrival_s:
                    self._retire_orphan(request, pending[1])
                    continue
                active = self.active_replicas()
                replica = self._choose_replica(request, active)
                replica.gateway.ingest(request)
                self._owner[request.request_id] = replica
                if pending is not None:
                    replica.gateway.cancel(request.request_id,
                                           at_s=pending[0], reason=pending[1])
                routed_any = True
            if routed_any or busy:
                return

    def _retire_orphan(self, request: TraceRequest, reason: str) -> None:
        """Terminal record for a request cancelled before it was routed."""
        status = "expired" if reason == "deadline" else "cancelled"
        record = synthesized_abort_record(request, request.arrival_s, status)
        self._orphans.append(record)
        self._record_completion(record)

    def run_until_drained(self) -> ServingResult:
        """Serve until everything submitted so far has finished."""
        while self.step():
            pass
        return self.result()

    def result(self) -> ServingResult:
        """Merged cluster-level snapshot of completions so far (records
        of requests cancelled before routing included)."""
        parts = list(self.results_by_replica().values())
        if self._orphans:
            parts.append(ServingResult(engine="cluster",
                                       records=list(self._orphans),
                                       makespan_s=1e-9))
        merged = ServingResult.merge(
            parts, engine="cluster",
            config={"replicas": len(self.replicas) + len(self.retired),
                    "balancer": self.balancer.name})
        if self.autoscaler is not None:
            merged.config["max_replicas_seen"] = \
                self.autoscaler.max_replica_count
        return merged

    def results_by_replica(self) -> Dict[str, ServingResult]:
        """Per-replica results keyed by replica name (retired included)."""
        return {r.name: r.gateway.result()
                for r in self.retired + self.replicas}

    def replay(self, trace: Trace,
               cancels: Optional[CancelSchedule] = None) -> ServingResult:
        """Serve a pre-materialized trace as if it arrived live.

        Each request is routed only once the simulation frontier reaches
        its arrival (see :meth:`_route_due`), so load-dependent balancers
        and the autoscaler react to offered load, not to a trace they can
        see into the future of.  Request ids and arrival times are
        preserved verbatim, and routing happens in arrival order — with
        one replica (or a pinned lineage balancer) per-replica records
        are bit-identical to ``engine.run(sub_trace)`` on the matching
        partition.  ``cancels`` schedules client cancellations as
        ``(request_id, at_s)`` pairs; ``None`` replays bit-identically to
        a pre-cancellation run.
        """
        self.reset()
        max_id = -1
        for request in trace:
            self._unrouted.push(Arrival(time=request.arrival_s,
                                        request=request))
            max_id = max(max_id, request.request_id)
        self._next_id = max_id + 1
        if cancels is not None:
            for request_id, at_s in cancels:
                self.cancel(request_id, at_s=at_s)
        return self.run_until_drained()

    def reset(self) -> None:
        """Fresh simulated timeline on the current replica set (replicas
        retired by earlier scale-downs are dropped, not resurrected).
        Registered listeners survive; per-request handles do not."""
        for replica in self.replicas:
            replica.engine.reset()
        self.retired.clear()
        self.kernel.reset()
        self._unrouted.clear()
        self._ticks.clear()
        self._schedule_tick(0.0)
        self._recent_records.clear()
        self._handles.clear()
        self._owner.clear()
        self._pending_cancels.clear()
        self._orphans.clear()
        self._next_id = 0
        self.balancer.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        if self._telemetry is not None:
            self._telemetry.reset()

    # ------------------------------------------------------------------ #
    # cluster-level telemetry
    # ------------------------------------------------------------------ #
    def recent_ttft_percentile(self, q: float = 90.0) -> float:
        """TTFT percentile over the most recent completions (the
        autoscaler's latency signal)."""
        if not self._recent_records:
            return 0.0
        return float(np.percentile(
            [r.ttft_s for r in self._recent_records], q))

    def _record_completion(self, record: RequestRecord) -> None:
        self._recent_records.append(record)
        if not record.finished:
            if record.conversation_id is not None:
                self.balancer.on_abandoned(
                    record.model_id,
                    conversation_id=record.conversation_id)
            else:
                self.balancer.on_abandoned(record.model_id)
            self._owner.pop(record.request_id, None)
        if self._on_complete is not None:
            self._on_complete(record)
        for listener in self._listeners:
            listener(record)
        if self.record_policy is RecordPolicy.KEEP_ALL:
            handle = self._handles.get(record.request_id)
        else:
            # releasing policy: drop the routing/handle entries for every
            # terminal request so cluster maps stay O(active).  (A stale
            # cancel against a dropped owner parks in _pending_cancels;
            # rare, bounded by the number of late cancels.)
            self._owner.pop(record.request_id, None)
            handle = self._handles.pop(record.request_id, None)
        if handle is not None:
            handle._finish(record)

    def _status_of(self, request_id: int) -> HandleStatus:
        """Live status for a handle: delegate to the owning replica, or
        QUEUED while the request is still unrouted."""
        owner = self._owner.get(request_id)
        if owner is not None:
            return owner.gateway._status_of(request_id)
        return HandleStatus.QUEUED
