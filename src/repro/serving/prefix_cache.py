"""Block-hashed radix prefix index + refcounted KV block pool.

Multi-turn session traffic re-prefills the whole conversation history
(system prompt + prior turns) on every turn; vLLM-style serving stacks
avoid that with *prefix caching*: the KV cache is carved into
fixed-size token blocks, each block is keyed by the hash chain of its
content, and a new prompt reuses the longest chain of already-resident
blocks instead of recomputing them.  This module is that subsystem for
the simulator, deterministic by construction:

* **Token identity, not token text.**  The simulator has no real token
  ids, so position *i* of a request's context maps to a namespace
  tuple — ``("s", shared_prefix_id, …)`` inside the shared
  system-prompt region, a conversation namespace for session turns,
  and a request-private namespace otherwise (private blocks can never
  be hit by another request).  Because the identity is positional,
  turn *k+1*'s prompt blocks are exactly turn *k*'s committed context
  blocks followed by the new user tokens.
* **Radix chain via interning.**  A cached block is a node whose
  identity is ``(parent node, block content key)``; the chain of nodes
  from the root *is* the block-hash chain, so the longest cached
  prefix is a single walk down an interning dict.  No Python
  ``hash()`` randomization is involved — keys are plain tuples used
  directly as dict keys.
* **Scope = (base model, variant).**  Every chain hangs off a scope
  node keyed by the engine's base model and the request's variant
  (delta/LoRA), so cross-variant hits are impossible even when two
  variants share a conversation id.
* **Refcounted pool + LRU of unreferenced leaves.**  Running requests
  hold references on the blocks they reuse; only refcount-0 *leaf*
  blocks are evictable, in strict least-recently-used order driven by
  a logical tick counter (never the wall clock).  Evicting a leaf may
  expose its parent as the next evictable leaf, so chains drain from
  the tip backwards.

The cache is policy-free about capacity: the owning engine charges the
pool against its KV-token budget and calls :meth:`evict` /
:meth:`evict_to` to make room.  See
:class:`repro.serving.engine.DeltaZipEngine` for the integration and
``tests/test_prefix_cache.py`` for the invariants pinned down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..workload.spec import TraceRequest

__all__ = ["BlockKey", "ScopeKey", "PrefixCache", "prefix_block_keys"]

#: a block's content key — a namespace tuple, usable directly as a dict
#: key (no salted ``hash()`` anywhere on the path)
BlockKey = Tuple[object, ...]
#: chain scope: (base model name, variant/model id)
ScopeKey = Tuple[str, str]


def prefix_block_keys(trace: TraceRequest, n_tokens: int,
                      block_tokens: int) -> List[BlockKey]:
    """Content keys for the complete blocks covering ``trace``'s first
    ``n_tokens`` context tokens (prompt first, then generated tokens).

    Position ``i`` belongs to the shared-prefix namespace while
    ``i < shared_prefix_tokens`` (when a ``shared_prefix_id`` is set),
    to the conversation namespace when the request carries a
    ``conversation_id``, and to a request-private namespace otherwise.
    Only *complete* blocks get keys — a partial tail block is never
    cacheable.  Block index is part of the key, so the same namespace
    at a different depth can never collide.
    """
    if block_tokens < 1:
        raise ValueError("block_tokens must be >= 1")
    shared_id = trace.shared_prefix_id
    shared_tokens = trace.shared_prefix_tokens if shared_id is not None else 0
    tail: object = trace.conversation_id if trace.conversation_id is not None \
        else ("req", trace.request_id)
    keys: List[BlockKey] = []
    for b in range(max(0, n_tokens) // block_tokens):
        start = b * block_tokens
        in_shared = min(max(shared_tokens - start, 0), block_tokens)
        if in_shared == block_tokens:
            keys.append(("s", shared_id, b))
        elif in_shared == 0:
            keys.append(("c", tail, b))
        else:
            keys.append(("m", shared_id, tail, in_shared, b))
    return keys


@dataclass
class _Node:
    """One resident KV block (or a depth-0 scope anchor)."""

    node_id: int
    parent_id: int
    key: BlockKey
    depth: int              # chain length in blocks; 0 for scope anchors
    refcount: int = 0
    n_children: int = 0


class PrefixCache:
    """Radix prefix index over refcounted KV blocks for one replica.

    All mutation is through :meth:`lookup` / :meth:`acquire` /
    :meth:`release` / :meth:`insert` / :meth:`evict`; iteration order
    everywhere is insertion order of plain dicts, so two identical call
    sequences produce identical states (run-to-run determinism).
    """

    def __init__(self, block_tokens: int) -> None:
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.block_tokens = int(block_tokens)
        self._nodes: Dict[int, _Node] = {}
        self._children: Dict[Tuple[int, BlockKey], int] = {}
        self._scopes: Dict[ScopeKey, int] = {}
        self._scope_of: Dict[int, ScopeKey] = {}
        #: refcount-0 leaf blocks in LRU order (front = coldest)
        self._evictable: "OrderedDict[int, None]" = OrderedDict()
        self._next_id = 1
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        """Resident block count (scope anchors excluded)."""
        return len(self._nodes) - len(self._scopes)

    @property
    def n_tokens(self) -> int:
        """KV tokens held by the pool (charged against the KV budget)."""
        return self.n_blocks * self.block_tokens

    @property
    def n_evictable(self) -> int:
        return len(self._evictable)

    @property
    def total_refcount(self) -> int:
        """Outstanding references across all blocks (0 when drained —
        the conservation invariant the cancel tests pin down)."""
        return sum(n.refcount for n in self._nodes.values() if n.depth > 0)

    # ------------------------------------------------------------------ #
    # the radix walk
    # ------------------------------------------------------------------ #
    def lookup(self, scope: ScopeKey,
               keys: Sequence[BlockKey]) -> List[int]:
        """Node ids of the longest cached prefix of ``keys`` under
        ``scope`` (possibly empty).  Touches matched blocks' LRU
        recency; does not take references — pair with :meth:`acquire`.
        """
        node_id = self._scopes.get(scope)
        if node_id is None:
            return []
        chain: List[int] = []
        for key in keys:
            child = self._children.get((node_id, key))
            if child is None:
                break
            chain.append(child)
            node_id = child
        for nid in chain:
            if nid in self._evictable:
                self._evictable.move_to_end(nid)
        return chain

    def acquire(self, node_ids: Sequence[int]) -> None:
        """Take one reference on each block (pins it against eviction)."""
        for nid in node_ids:
            node = self._nodes[nid]
            node.refcount += 1
            self._evictable.pop(nid, None)

    def release(self, node_ids: Sequence[int]) -> None:
        """Drop one reference on each block; refcount-0 leaves become
        evictable at the hot end of the LRU order."""
        for nid in node_ids:
            node = self._nodes[nid]
            if node.refcount <= 0:
                raise RuntimeError(
                    f"prefix-cache refcount underflow on node {nid}")
            node.refcount -= 1
            if node.refcount == 0 and node.n_children == 0:
                self._evictable[nid] = None

    def insert(self, scope: ScopeKey,
               keys: Sequence[BlockKey]) -> List[int]:
        """Materialize the chain for ``keys`` under ``scope``, reusing
        every block already resident; returns the full chain's node
        ids.  New blocks join unreferenced (a refcount-0 tail leaf is
        immediately evictable); takes no references — callers that need
        the chain pinned must :meth:`acquire` it."""
        parent_id = self._scopes.get(scope)
        if parent_id is None:
            parent_id = self._new_node(-1, ("scope",) + scope, 0)
            self._scopes[scope] = parent_id
            self._scope_of[parent_id] = scope
        chain: List[int] = []
        for key in keys:
            child = self._children.get((parent_id, key))
            if child is None:
                parent = self._nodes[parent_id]
                child = self._new_node(parent_id, key, parent.depth + 1)
                self._children[(parent_id, key)] = child
                parent.n_children += 1
                # the parent is no longer a leaf, so it can't be evicted
                self._evictable.pop(parent_id, None)
            elif child in self._evictable:
                self._evictable.move_to_end(child)
            chain.append(child)
            parent_id = child
        tail = self._nodes[parent_id]
        if tail.depth > 0 and tail.refcount == 0 and tail.n_children == 0 \
                and parent_id not in self._evictable:
            self._evictable[parent_id] = None
        return chain

    def _new_node(self, parent_id: int, key: BlockKey, depth: int) -> int:
        nid = self._next_id
        self._next_id += 1
        self._nodes[nid] = _Node(node_id=nid, parent_id=parent_id,
                                 key=key, depth=depth)
        return nid

    # ------------------------------------------------------------------ #
    # eviction (driven by the engine's KV budget)
    # ------------------------------------------------------------------ #
    def evict(self, n_blocks: int) -> int:
        """Evict up to ``n_blocks`` unreferenced blocks, coldest first;
        returns how many were actually evicted.  Evicting a leaf may
        expose its parent as the next evictable leaf (chains drain from
        the tip), and a scope anchor with no chains left disappears."""
        evicted = 0
        while evicted < n_blocks and self._evictable:
            nid, _ = self._evictable.popitem(last=False)
            node = self._nodes.pop(nid)
            del self._children[(node.parent_id, node.key)]
            evicted += 1
            self.evictions += 1
            parent = self._nodes.get(node.parent_id)
            if parent is None:
                continue
            parent.n_children -= 1
            if parent.n_children == 0:
                if parent.depth == 0:
                    # empty scope anchor: drop it outright
                    self._nodes.pop(parent.node_id)
                    scope = self._scope_of.pop(parent.node_id)
                    self._scopes.pop(scope, None)
                elif parent.refcount == 0:
                    self._evictable[parent.node_id] = None
        return evicted

    def evict_to(self, max_blocks: int) -> int:
        """Evict until at most ``max_blocks`` blocks remain (or nothing
        more is unreferenced)."""
        excess = self.n_blocks - max(0, max_blocks)
        if excess <= 0:
            return 0
        return self.evict(excess)

    def clear(self) -> None:
        self._nodes.clear()
        self._children.clear()
        self._scopes.clear()
        self._scope_of.clear()
        self._evictable.clear()
        self._next_id = 1
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PrefixCache(blocks={self.n_blocks}, "
                f"evictable={self.n_evictable}, "
                f"refs={self.total_refcount}, "
                f"block_tokens={self.block_tokens})")
