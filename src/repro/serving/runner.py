"""Functional decoupled multi-variant model runner (Eq. 2, §5.1).

Executes *real* numpy inference for a batch of requests that target
different fine-tuned variants of one base model:

    y = (W_base + Δ_v) x  =  W_base x  (one dense GEMM over the whole batch)
                           + Δ_v x     (SBMM over per-variant row groups)

Decoupling happens at every linear layer; results merge before each
non-linear op (RMSNorm, softmax, SiLU), exactly as the paper prescribes —
the distributive law does not extend through non-linearities.

This runner is the correctness companion to the discrete-event engine: it
demonstrates (and lets tests verify) that serving compressed deltas through
the decoupled path is numerically identical to serving each reconstructed
model separately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression.artifacts import CompressedDelta
from ..nn import functional as F
from ..nn.attention import KVCache
from ..nn.transformer import LINEAR_LAYER_KINDS, TransformerModel
from .sbmm import sbmm_forward

__all__ = ["DecoupledModelRunner"]

_BASE_ID = "__base__"


class DecoupledModelRunner:
    """Batched multi-variant inference over one shared base model."""

    def __init__(self, base: TransformerModel,
                 artifacts: Optional[Dict[str, CompressedDelta]] = None):
        self.base = base
        self.config = base.config
        self._deltas: Dict[str, Dict[str, np.ndarray]] = {}
        self._extras: Dict[str, Dict[str, np.ndarray]] = {}
        if artifacts:
            for model_id, artifact in artifacts.items():
                self.load_variant(model_id, artifact)

    # ------------------------------------------------------------------ #
    # variant management ("swapping deltas in")
    # ------------------------------------------------------------------ #
    def load_variant(self, model_id: str, artifact: CompressedDelta) -> None:
        """Dequantize a compressed delta and make it servable."""
        if not artifact.config.delta_mode:
            raise ValueError(
                "decoupled serving requires delta-mode artifacts")
        if model_id in self._deltas:
            raise ValueError(f"variant {model_id!r} already loaded")
        self._deltas[model_id] = {name: layer.dense()
                                  for name, layer in artifact.layers.items()}
        self._extras[model_id] = {name: arr.astype(np.float32)
                                  for name, arr in artifact.extras.items()}

    def unload_variant(self, model_id: str) -> None:
        self._deltas.pop(model_id, None)
        self._extras.pop(model_id, None)

    @property
    def loaded_variants(self) -> List[str]:
        return sorted(self._deltas)

    # ------------------------------------------------------------------ #
    # decoupled building blocks
    # ------------------------------------------------------------------ #
    def _variant_groups(self, variant_ids: Sequence[str]) -> Dict[str, np.ndarray]:
        groups: Dict[str, List[int]] = {}
        for i, v in enumerate(variant_ids):
            groups.setdefault(v, []).append(i)
        return {v: np.asarray(rows) for v, rows in groups.items()}

    def _delta_matrix(self, v: str, layer_name: str) -> Optional[np.ndarray]:
        """A variant's dense delta for a linear: packed layers first, then
        the uncompressed extras (lm_head lives there)."""
        delta = self._deltas.get(v, {}).get(layer_name)
        if delta is not None:
            return delta
        extra = self._extras.get(v, {}).get(layer_name)
        if extra is not None and extra.ndim == 2:
            return extra
        return None

    def _decoupled_linear(self, x: np.ndarray, layer_name: str,
                          base_weight: np.ndarray,
                          groups: Dict[str, np.ndarray]) -> np.ndarray:
        """``x`` is (B, T, in); per-sequence variant via ``groups``."""
        b, t, d_in = x.shape
        y = x @ base_weight.T  # batched base GEMM: all variants together
        delta_ids = [v for v in groups if v != _BASE_ID
                     and self._delta_matrix(v, layer_name) is not None]
        if delta_ids:
            flat = x.reshape(b * t, d_in)
            deltas = [self._delta_matrix(v, layer_name) for v in delta_ids]
            idx = np.full(b * t, -1, dtype=np.int64)
            for j, v in enumerate(delta_ids):
                rows = groups[v]
                for r in rows:
                    idx[r * t:(r + 1) * t] = j
            live = idx >= 0
            if np.any(live):
                contrib = sbmm_forward(flat[live], deltas, idx[live])
                out = y.reshape(b * t, -1)
                out[live] += contrib
                y = out.reshape(b, t, -1)
        return y

    def _variant_param(self, v: str, name: str,
                       base_value: np.ndarray) -> np.ndarray:
        if v == _BASE_ID:
            return base_value
        extra = self._extras.get(v, {}).get(name)
        if extra is None:
            return base_value
        return base_value + extra

    def _grouped_norm(self, x: np.ndarray, name: str, base_weight: np.ndarray,
                      groups: Dict[str, np.ndarray], eps: float) -> np.ndarray:
        out = np.empty_like(x)
        for v, rows in groups.items():
            w = self._variant_param(v, name, base_weight)
            out[rows] = F.rms_norm(x[rows], w, eps=eps)
        return out

    def _grouped_embed(self, tokens: np.ndarray,
                       groups: Dict[str, np.ndarray]) -> np.ndarray:
        base_table = self.base.embed_tokens.weight.data
        out = base_table[tokens]
        for v, rows in groups.items():
            extra = self._extras.get(v, {}).get("embed_tokens.weight")
            if extra is not None:
                out[rows] += extra[tokens[rows]]
        return out

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, tokens: np.ndarray, variant_ids: Sequence[str],
                kv_caches: Optional[List[KVCache]] = None) -> np.ndarray:
        """Batched decoupled forward; tokens (B, T), one variant per row.

        Unknown/unloaded variants raise; pass ``"__base__"`` to serve the
        base model itself.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        if len(variant_ids) != tokens.shape[0]:
            raise ValueError("one variant id per batch row required")
        for v in variant_ids:
            if v != _BASE_ID and v not in self._deltas:
                raise KeyError(f"variant {v!r} not loaded")
        groups = self._variant_groups(variant_ids)

        h = self._grouped_embed(tokens, groups)
        offset = kv_caches[0].length if kv_caches else 0
        for li, block in enumerate(self.base.layers):
            prefix = f"layers.{li}"
            normed = self._grouped_norm(
                h, f"{prefix}.input_norm.weight",
                block.input_norm.weight.data, groups, block.input_norm.eps)
            attn_out = self._attention(normed, li, block, groups,
                                       kv_caches[li] if kv_caches else None,
                                       offset)
            h = h + attn_out
            normed = self._grouped_norm(
                h, f"{prefix}.post_norm.weight",
                block.post_norm.weight.data, groups, block.post_norm.eps)
            h = h + self._mlp(normed, li, block, groups)
        h = self._grouped_norm(h, "final_norm.weight",
                               self.base.final_norm.weight.data, groups,
                               self.base.final_norm.eps)
        return self._decoupled_linear(
            h, "lm_head.weight", self.base.lm_head.weight.data, groups)

    def _attention(self, x, li, block, groups, kv_cache, offset):
        attn = block.self_attn
        prefix = f"layers.{li}.self_attn"
        q = self._decoupled_linear(x, f"{prefix}.q_proj.weight",
                                   attn.q_proj.weight.data, groups)
        k = self._decoupled_linear(x, f"{prefix}.k_proj.weight",
                                   attn.k_proj.weight.data, groups)
        v = self._decoupled_linear(x, f"{prefix}.v_proj.weight",
                                   attn.v_proj.weight.data, groups)
        q = attn._split_heads(q)
        k = attn._split_kv_heads(k)
        v = attn._split_kv_heads(v)
        q = attn._rope(q, offset)
        k = attn._rope(k, offset)
        if kv_cache is not None:
            kv_cache.append(k, v)
            keys, values = kv_cache.view()
        else:
            keys, values = k, v
        keys = attn._expand_kv(keys)
        values = attn._expand_kv(values)
        scale = 1.0 / np.sqrt(attn.head_dim)
        scores = (q @ keys.transpose(0, 1, 3, 2)) * scale
        t_new, t_total = q.shape[2], keys.shape[2]
        if t_new > 1 or kv_cache is None:
            q_pos = np.arange(offset, offset + t_new)[:, None]
            k_pos = np.arange(t_total)[None, :]
            scores = np.where(k_pos > q_pos, -np.inf, scores)
        weights = F.softmax(scores, axis=-1)
        merged = attn._merge_heads(weights @ values)
        return self._decoupled_linear(merged, f"{prefix}.o_proj.weight",
                                      attn.o_proj.weight.data, groups)

    def _mlp(self, x, li, block, groups):
        mlp = block.mlp
        prefix = f"layers.{li}.mlp"
        gate = self._decoupled_linear(x, f"{prefix}.gate_proj.weight",
                                      mlp.gate_proj.weight.data, groups)
        up = self._decoupled_linear(x, f"{prefix}.up_proj.weight",
                                    mlp.up_proj.weight.data, groups)
        hidden = F.silu(gate) * up
        return self._decoupled_linear(hidden, f"{prefix}.down_proj.weight",
                                      mlp.down_proj.weight.data, groups)

    # ------------------------------------------------------------------ #
    def generate(self, prompts: List[List[int]], variant_ids: Sequence[str],
                 max_new_tokens: int = 16,
                 eos_token: Optional[int] = None) -> List[List[int]]:
        """Greedy batched decode across variants (equal-length prompts are
        not required: prompts are left-aligned and decoded per row)."""
        if eos_token is None:
            eos_token = self.config.eos_token
        outputs: List[List[int]] = []
        # simple per-row decode (functional correctness, not throughput)
        for prompt, v in zip(prompts, variant_ids):
            caches = self.base.new_kv_caches(batch=1)
            tokens = np.asarray(prompt, dtype=np.int64)[None, :]
            logits = self.forward(tokens, [v], kv_caches=caches)
            row: List[int] = []
            next_logits = logits[0, -1]
            budget = min(max_new_tokens, self.config.max_seq - len(prompt))
            for _ in range(budget):
                token = int(np.argmax(next_logits))
                row.append(token)
                if token == eos_token:
                    break
                step = np.asarray([[token]], dtype=np.int64)
                logits = self.forward(step, [v], kv_caches=caches)
                next_logits = logits[0, -1]
            outputs.append(row)
        return outputs
