"""Serving-side request lifecycle and per-request timing records."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..workload.spec import TraceRequest

__all__ = ["DEFAULT_TENANT", "RequestState", "TERMINAL_STATES",
           "ServingRequest", "RequestRecord", "synthesized_abort_record"]

#: the tenant that requests without a ``tenant_id`` bill against — shared
#: by per-tenant metrics grouping and the admission layer so the two can
#: never disagree on the untenanted bucket's key
DEFAULT_TENANT = "default"


class RequestState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"      # prefilled, decoding
    PREEMPTED = "preempted"  # skip-the-line request bumped by parent finish
    FINISHED = "finished"
    CANCELLED = "cancelled"  # client withdrew it (partial completion)
    EXPIRED = "expired"      # deadline passed before it finished


#: states a request never leaves; the set the abort machinery checks to
#: treat late Cancel events as stale
TERMINAL_STATES = frozenset((RequestState.FINISHED, RequestState.CANCELLED,
                             RequestState.EXPIRED))


@dataclass
class ServingRequest:
    """Mutable serving state wrapped around an immutable trace request."""

    trace: TraceRequest
    state: RequestState = RequestState.QUEUED
    generated_tokens: int = 0
    prefilled: bool = False
    first_scheduled_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    queue_wait_s: float = 0.0
    loading_s: float = 0.0
    inference_s: float = 0.0
    skipped_line: bool = False
    parent_id: Optional[int] = None  # head-of-queue request we drafted behind
    preemptions: int = 0
    needs_recompute: bool = False    # KV discarded at preemption; re-prefill
    cached_prefix_tokens: int = 0    # prompt tokens served from the prefix cache
    transfer_s: float = 0.0          # prefill→decode KV move (disaggregated)
    # memoized terminal record: retire-time metrics observation and the
    # gateway finish hooks both ask for it, and a terminal request can
    # never produce a different one
    _record_cache: Optional["RequestRecord"] = field(
        default=None, repr=False, compare=False)

    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def model_id(self) -> str:
        return self.trace.model_id

    @property
    def tenant_id(self) -> Optional[str]:
        return self.trace.tenant_id

    @property
    def conversation_id(self) -> Optional[str]:
        return self.trace.conversation_id

    @property
    def arrival_s(self) -> float:
        return self.trace.arrival_s

    @property
    def deadline_s(self) -> Optional[float]:
        return self.trace.deadline_s

    @property
    def remaining_tokens(self) -> int:
        return self.trace.output_tokens - self.generated_tokens

    @property
    def done(self) -> bool:
        return self.generated_tokens >= self.trace.output_tokens

    @property
    def terminal(self) -> bool:
        """Finished, cancelled, or expired — no further transitions."""
        return self.state in TERMINAL_STATES

    @property
    def context_length(self) -> int:
        return self.trace.prompt_tokens + self.generated_tokens

    def record(self) -> "RequestRecord":
        if self._record_cache is not None:
            return self._record_cache
        if self.finish_s is None:
            raise ValueError(f"request {self.request_id} not finished")
        status = self.state.value if self.terminal \
            else RequestState.FINISHED.value
        rec = RequestRecord(
            request_id=self.request_id,
            model_id=self.model_id,
            arrival_s=self.arrival_s,
            first_token_s=self.first_token_s,
            finish_s=self.finish_s,
            prompt_tokens=self.trace.prompt_tokens,
            output_tokens=self.trace.output_tokens,
            queue_wait_s=self.queue_wait_s,
            loading_s=self.loading_s,
            inference_s=self.inference_s,
            skipped_line=self.skipped_line,
            preemptions=self.preemptions,
            tenant_id=self.tenant_id,
            status=status,
            served_tokens=self.generated_tokens,
            conversation_id=self.conversation_id,
            cached_prefix_tokens=self.cached_prefix_tokens,
            transfer_s=self.transfer_s,
        )
        if self.terminal:
            self._record_cache = rec
        return rec


@dataclass(frozen=True)
class RequestRecord:
    """Immutable per-request result row (the unit of every Fig 11-19 metric).

    ``status`` distinguishes the terminal state: ``"finished"`` (the only
    value pre-cancellation runs produce), ``"cancelled"``, ``"expired"``,
    or — for records synthesized at the admission frontier and surfaced
    only through request handles — ``"shed"``.  ``served_tokens`` counts
    the output tokens actually generated; ``None`` (legacy records) means
    all ``output_tokens`` were served.  ``conversation_id`` carries the
    session key through to metrics and routing;
    ``cached_prefix_tokens`` counts the prompt tokens whose prefill was
    skipped by the engine's prefix cache (0 everywhere the cache is off).
    ``transfer_s`` is the priced prefill→decode KV-move time under
    disaggregated serving (0 for every colocated engine).
    """

    request_id: int
    model_id: str
    arrival_s: float
    first_token_s: Optional[float]
    finish_s: float
    prompt_tokens: int
    output_tokens: int
    queue_wait_s: float
    loading_s: float
    inference_s: float
    skipped_line: bool
    preemptions: int
    tenant_id: Optional[str] = None
    status: str = "finished"
    served_tokens: Optional[int] = None
    conversation_id: Optional[str] = None
    cached_prefix_tokens: int = 0
    transfer_s: float = 0.0

    @property
    def finished(self) -> bool:
        """True when the request ran to completion (not aborted)."""
        return self.status == "finished"

    @property
    def tokens_served(self) -> int:
        """Output tokens actually generated (= requested when finished)."""
        if self.served_tokens is not None:
            return self.served_tokens
        return self.output_tokens

    @property
    def e2e_latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        if self.first_token_s is None:
            return self.e2e_latency_s
        return self.first_token_s - self.arrival_s

    @property
    def time_per_token_s(self) -> float:
        return self.e2e_latency_s / max(self.output_tokens, 1)


def synthesized_abort_record(request: TraceRequest, finish_s: float,
                             status: str) -> RequestRecord:
    """Terminal record for a request that never reached an engine.

    The shared constructor behind every layer-synthesized abort: a
    cluster request cancelled before routing, a tenancy request
    cancelled/expired at the admission frontier, or a shed/rejected
    request surfaced only through its handle.  Zero tokens were served;
    ``finish_s`` is floored at the arrival so latency never goes
    negative, and the whole wait (if any) is queue time.
    """
    finish = max(finish_s, request.arrival_s)
    return RequestRecord(
        request_id=request.request_id, model_id=request.model_id,
        arrival_s=request.arrival_s, first_token_s=None, finish_s=finish,
        prompt_tokens=request.prompt_tokens,
        output_tokens=request.output_tokens,
        queue_wait_s=finish - request.arrival_s,
        loading_s=0.0, inference_s=0.0, skipped_line=False, preemptions=0,
        tenant_id=request.tenant_id, status=status, served_tokens=0,
        conversation_id=request.conversation_id)
