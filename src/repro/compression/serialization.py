"""On-disk format for compressed deltas (the delta zoo's storage layer).

A ``.dzip`` file is a zip archive holding ``metadata.json`` (model ids,
compression config, per-layer index) plus one ``.npy`` entry per stored
array.  Packed payloads round-trip bit-exactly; the uncompressed extras are
stored at FP16 (matching their byte accounting), so they round-trip to FP16
precision.  This is the persistence layer of the Model Manager's delta zoo
(paper Fig 4).
"""

from __future__ import annotations

import dataclasses
import io
import json
import zipfile
from typing import Dict, Optional

import numpy as np

from .artifacts import CompressedDelta, CompressedLayer
from .configs import CompressionConfig
from .packing import PackedSparseMatrix
from .quant import QuantGrid

__all__ = ["save_compressed_delta", "load_compressed_delta"]

_FORMAT_VERSION = 1


def _write_array(zf: zipfile.ZipFile, name: str, arr: np.ndarray) -> None:
    buf = io.BytesIO()
    np.save(buf, arr)
    zf.writestr(name + ".npy", buf.getvalue())


def _read_array(zf: zipfile.ZipFile, name: str) -> np.ndarray:
    return np.load(io.BytesIO(zf.read(name + ".npy")))


def _layer_meta(layer: CompressedLayer) -> Dict:
    meta = {
        "shape": list(layer.shape),
        "kind": ("fp16" if layer.fp16_values is not None else
                 "sparse" if layer.packed_sparse is not None else "dense"),
        "lossless_nbytes": layer.lossless_nbytes,
        "has_awq_scales": layer.awq_scales is not None,
        "has_grid": layer.grid is not None,
    }
    if layer.packed_sparse is not None:
        meta["kept_per_group"] = layer.packed_sparse.kept_per_group
        meta["m"] = layer.packed_sparse.m
        meta["bits"] = layer.packed_sparse.bits
    if layer.grid is not None:
        meta["grid_bits"] = layer.grid.bits
        meta["grid_group_size"] = layer.grid.group_size
        meta["grid_symmetric"] = layer.grid.symmetric
    return meta


def save_compressed_delta(artifact: CompressedDelta, path: str) -> None:
    """Write the artifact to ``path`` (conventionally ``*.dzip``)."""
    metadata = {
        "format_version": _FORMAT_VERSION,
        "model_id": artifact.model_id,
        "base_model_id": artifact.base_model_id,
        "config": dataclasses.asdict(artifact.config),
        "layers": {name: _layer_meta(layer)
                   for name, layer in artifact.layers.items()},
        "extras": sorted(artifact.extras),
        "reconstruction_errors": artifact.reconstruction_errors,
    }
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        zf.writestr("metadata.json", json.dumps(metadata, indent=1))
        for name, layer in artifact.layers.items():
            prefix = f"layers/{name}"
            if layer.fp16_values is not None:
                _write_array(zf, f"{prefix}/fp16",
                             layer.fp16_values.astype(np.float16))
            if layer.packed_sparse is not None:
                _write_array(zf, f"{prefix}/values",
                             layer.packed_sparse.values)
                _write_array(zf, f"{prefix}/indices",
                             layer.packed_sparse.indices)
            if layer.packed_dense is not None:
                _write_array(zf, f"{prefix}/dense", layer.packed_dense)
            if layer.grid is not None:
                _write_array(zf, f"{prefix}/scale", layer.grid.scale)
                _write_array(zf, f"{prefix}/zero", layer.grid.zero)
            if layer.awq_scales is not None:
                _write_array(zf, f"{prefix}/awq_scales", layer.awq_scales)
        for name, arr in artifact.extras.items():
            _write_array(zf, f"extras/{name}", arr.astype(np.float16))


def load_compressed_delta(path: str) -> CompressedDelta:
    """Inverse of :func:`save_compressed_delta`."""
    with zipfile.ZipFile(path, "r") as zf:
        metadata = json.loads(zf.read("metadata.json"))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported artifact format: "
                f"{metadata.get('format_version')!r}")
        config = CompressionConfig(**metadata["config"])
        layers: Dict[str, CompressedLayer] = {}
        for name, meta in metadata["layers"].items():
            prefix = f"layers/{name}"
            grid: Optional[QuantGrid] = None
            if meta["has_grid"]:
                grid = QuantGrid(
                    bits=meta["grid_bits"],
                    group_size=meta["grid_group_size"],
                    scale=_read_array(zf, f"{prefix}/scale"),
                    zero=_read_array(zf, f"{prefix}/zero"),
                    symmetric=meta["grid_symmetric"])
            layer = CompressedLayer(name=name, shape=tuple(meta["shape"]),
                                    config=config, grid=grid,
                                    lossless_nbytes=meta["lossless_nbytes"])
            if meta["kind"] == "fp16":
                layer.fp16_values = _read_array(
                    zf, f"{prefix}/fp16").astype(np.float32)
            elif meta["kind"] == "sparse":
                layer.packed_sparse = PackedSparseMatrix(
                    shape=tuple(meta["shape"]), bits=meta["bits"],
                    values=_read_array(zf, f"{prefix}/values"),
                    indices=_read_array(zf, f"{prefix}/indices"),
                    kept_per_group=meta["kept_per_group"], m=meta["m"])
            else:
                layer.packed_dense = _read_array(zf, f"{prefix}/dense")
            if meta["has_awq_scales"]:
                layer.awq_scales = _read_array(zf, f"{prefix}/awq_scales")
            layers[name] = layer
        extras = {name: _read_array(zf, f"extras/{name}").astype(np.float32)
                  for name in metadata["extras"]}
    return CompressedDelta(
        model_id=metadata["model_id"],
        base_model_id=metadata["base_model_id"],
        config=config, layers=layers, extras=extras,
        reconstruction_errors=metadata["reconstruction_errors"])
