"""Compressed-delta artifacts: the packed format the serving engine swaps.

A :class:`CompressedDelta` is the on-disk/in-memory unit the Model Manager
stores in its delta zoo (paper Fig 4): per-linear-layer packed matrices plus
the small FP16 remainder (embeddings, norms, LM head — the paper leaves
these uncompressed, which is why embedding-heavy models see lower end-to-end
ratios in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .configs import CompressionConfig
from .lossless import LosslessCodec, compress_array
from .packing import PackedSparseMatrix, pack_codes, unpack_codes, \
    pack_nm_sparse, unpack_nm_sparse
from .quant import QuantGrid, dequantize

__all__ = ["CompressedLayer", "CompressedDelta", "FP16_BYTES"]

FP16_BYTES = 2  # storage cost per uncompressed parameter


@dataclass
class CompressedLayer:
    """One packed weight matrix (a delta, or a raw weight for baselines)."""

    name: str
    shape: Tuple[int, int]
    config: CompressionConfig
    packed_sparse: Optional[PackedSparseMatrix] = None
    packed_dense: Optional[np.ndarray] = None   # packed codes, no sparsity
    grid: Optional[QuantGrid] = None
    fp16_values: Optional[np.ndarray] = None    # bits == 16 path
    awq_scales: Optional[np.ndarray] = None     # per-input-channel descale
    lossless_nbytes: Optional[int] = None       # stage-4 output size, if on

    # ------------------------------------------------------------------ #
    def dense(self) -> np.ndarray:
        """Dequantize back to a dense float32 matrix (zeros where pruned)."""
        rows, cols = self.shape
        if self.fp16_values is not None:
            return self.fp16_values.astype(np.float32)
        if self.packed_sparse is not None:
            codes, mask = unpack_nm_sparse(self.packed_sparse)
            out = np.where(mask, dequantize(codes, self.grid), 0.0)
        else:
            codes = unpack_codes(self.packed_dense, self.config.bits,
                                 rows * cols).reshape(rows, cols)
            out = dequantize(codes, self.grid)
        if self.awq_scales is not None:
            out = out / self.awq_scales[None, :]
        return out.astype(np.float32)

    # ------------------------------------------------------------------ #
    def nbytes_breakdown(self) -> Dict[str, int]:
        """Per-component byte accounting (Fig 5)."""
        breakdown: Dict[str, int] = {"values": 0, "indices": 0, "metadata": 0}
        if self.fp16_values is not None:
            breakdown["values"] = self.fp16_values.size * FP16_BYTES
            return breakdown
        if self.packed_sparse is not None:
            breakdown["values"] = self.packed_sparse.nbytes_values()
            breakdown["indices"] = self.packed_sparse.nbytes_indices()
        else:
            breakdown["values"] = int(self.packed_dense.nbytes)
        if self.grid is not None:
            breakdown["metadata"] = self.grid.nbytes_metadata()
        if self.awq_scales is not None:
            breakdown["metadata"] += self.awq_scales.size * FP16_BYTES
        return breakdown

    def nbytes(self) -> int:
        if self.lossless_nbytes is not None:
            return self.lossless_nbytes + self.nbytes_breakdown()["metadata"]
        return sum(self.nbytes_breakdown().values())

    def nbytes_uncompressed(self) -> int:
        rows, cols = self.shape
        return rows * cols * FP16_BYTES

    def compression_ratio(self) -> float:
        return self.nbytes_uncompressed() / max(self.nbytes(), 1)


@dataclass
class CompressedDelta:
    """A packed model delta plus everything needed to reconstruct/serve it."""

    model_id: str
    base_model_id: str
    config: CompressionConfig
    layers: Dict[str, CompressedLayer]
    extras: Dict[str, np.ndarray]  # uncompressed tensors (FP16 in spirit)
    reconstruction_errors: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def delta_state_dict(self) -> Dict[str, np.ndarray]:
        """Dense delta for every tensor (compressed layers dequantized)."""
        out = {name: layer.dense() for name, layer in self.layers.items()}
        out.update({name: arr.astype(np.float32)
                    for name, arr in self.extras.items()})
        return out

    def to_state_dict(self, base_state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Reconstruct the (approximate) fine-tuned state dict.

        In delta mode this is ``base + Δ̃``; in direct mode (baselines that
        compress the raw weights) compressed layers *replace* the base.
        """
        out = {}
        dense = self.delta_state_dict()
        for name, base_arr in base_state.items():
            if name not in dense:
                raise KeyError(f"missing tensor in compressed artifact: {name}")
            if self.config.delta_mode:
                out[name] = (base_arr.astype(np.float32) + dense[name])
            else:
                out[name] = dense[name]
        return out

    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        total = sum(layer.nbytes() for layer in self.layers.values())
        total += sum(arr.size * FP16_BYTES for arr in self.extras.values())
        return total

    def nbytes_uncompressed(self) -> int:
        total = sum(layer.nbytes_uncompressed() for layer in self.layers.values())
        total += sum(arr.size * FP16_BYTES for arr in self.extras.values())
        return total

    def compression_ratio(self) -> float:
        """Full-model FP16 bytes over compressed-artifact bytes (Table 1)."""
        return self.nbytes_uncompressed() / max(self.nbytes(), 1)

    def linear_compression_ratio(self) -> float:
        """Ratio over the compressed linear layers only (Fig 5's view)."""
        num = sum(l.nbytes_uncompressed() for l in self.layers.values())
        den = sum(l.nbytes() for l in self.layers.values())
        return num / max(den, 1)

    def mean_reconstruction_error(self) -> float:
        if not self.reconstruction_errors:
            return 0.0
        return float(np.mean(list(self.reconstruction_errors.values())))
