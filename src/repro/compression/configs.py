"""Compression configuration shared by the pipeline and the serving layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CompressionConfig"]


@dataclass(frozen=True)
class CompressionConfig:
    """Parameters of the ΔCompress pipeline (paper §4.1, Fig 5).

    Attributes:
        bits: quantization bit-width for surviving delta values (2 or 4 in
            the paper; 8/16 supported for ablations, 16 = no quantization).
        sparsity_n / sparsity_m: N:M structured sparsity — at least
            ``sparsity_n`` of every ``sparsity_m`` contiguous values are
            pruned (the paper uses 2:4).  ``sparsity_n = 0`` disables pruning.
        group_size: quantization group length along the input dimension;
            each group stores one FP16 scale and one integer zero point.
        lossless: apply the stage-4 lossless codec to the packed bytes.
        delta_mode: compress the delta (ΔCompress) instead of the raw
            fine-tuned weight (the SparseGPT-direct baseline of Table 1).
        damp_percent: Hessian dampening fraction for the OBS solver.
        blocksize: OBS column block size.
        symmetric: symmetric (zero-point-free) quantization grid.
        algorithm: lossy solver — "obs" (SparseGPT-style, the paper's
            choice), "awq", or "rtn" (round-to-nearest ablation).
    """

    bits: int = 4
    sparsity_n: int = 2
    sparsity_m: int = 4
    group_size: int = 32
    lossless: bool = False
    delta_mode: bool = True
    damp_percent: float = 0.01
    blocksize: int = 128
    symmetric: bool = False
    algorithm: str = "obs"

    def __post_init__(self):
        if self.bits not in (2, 3, 4, 8, 16):
            raise ValueError(f"unsupported bit width: {self.bits}")
        if self.algorithm not in ("obs", "awq", "rtn"):
            raise ValueError(f"unknown algorithm: {self.algorithm!r}")
        if self.algorithm == "awq" and self.sparsity_n != 0:
            raise ValueError("AWQ is quantization-only; set sparsity_n=0")
        if self.sparsity_n < 0 or self.sparsity_m <= 0:
            raise ValueError("invalid N:M sparsity spec")
        if self.sparsity_n >= self.sparsity_m and self.sparsity_n != 0:
            raise ValueError(
                f"{self.sparsity_n}:{self.sparsity_m} would prune every value")
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")

    @property
    def prunes(self) -> bool:
        return self.sparsity_n > 0

    @property
    def quantizes(self) -> bool:
        return self.bits < 16

    @property
    def density(self) -> float:
        """Fraction of values kept after N:M pruning."""
        if not self.prunes:
            return 1.0
        return 1.0 - self.sparsity_n / self.sparsity_m

    def short_name(self) -> str:
        parts = [f"{self.bits}b"]
        if self.prunes:
            parts.append(f"{self.sparsity_n}n{self.sparsity_m}m")
        parts.append(f"g{self.group_size}")
        if self.lossless:
            parts.append("zl")
        return "_".join(parts)

    @staticmethod
    def deltazip_4bit(**overrides) -> "CompressionConfig":
        """The paper's DeltaZip(4bit★) configuration."""
        return CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4, **overrides)

    @staticmethod
    def deltazip_2bit(**overrides) -> "CompressionConfig":
        """The paper's DeltaZip(2bit★) configuration."""
        return CompressionConfig(bits=2, sparsity_n=2, sparsity_m=4, **overrides)

    @staticmethod
    def sparsegpt_4bit(**overrides) -> "CompressionConfig":
        """SparseGPT(4bit★) baseline: same pipeline applied to raw weights."""
        return CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4,
                                 delta_mode=False, **overrides)

    @staticmethod
    def awq_4bit(**overrides) -> "CompressionConfig":
        """AWQ(4bit) baseline: quantization only, no sparsity, raw weights."""
        return CompressionConfig(bits=4, sparsity_n=0, sparsity_m=4,
                                 delta_mode=False, algorithm="awq", **overrides)
