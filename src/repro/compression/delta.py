"""Delta extraction and reconstruction (paper Fig 5 step 1 / Algorithm 1).

A *delta* is the per-tensor difference between a full-model-tuned checkpoint
and its base: ``Δ = w_finetuned − w_base``.  Fine-tuning perturbs weights by
small magnitudes (Fig 3), so the delta's value distribution is far narrower
than the weight's own — the property every later stage exploits.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["extract_delta", "apply_delta", "delta_statistics"]


def extract_delta(
    finetuned: Dict[str, np.ndarray],
    base: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Per-tensor ``finetuned − base``.  Keys must match exactly."""
    if set(finetuned) != set(base):
        missing = set(base) ^ set(finetuned)
        raise KeyError(f"state dict key mismatch: {sorted(missing)[:5]} ...")
    delta = {}
    for name, wf in finetuned.items():
        wb = base[name]
        if wf.shape != wb.shape:
            raise ValueError(
                f"shape mismatch for {name}: {wf.shape} vs {wb.shape}")
        delta[name] = (wf.astype(np.float32) - wb.astype(np.float32))
    return delta


def apply_delta(
    base: Dict[str, np.ndarray],
    delta: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Reconstruct a fine-tuned state dict: ``base + Δ``."""
    if set(base) != set(delta):
        missing = set(base) ^ set(delta)
        raise KeyError(f"state dict key mismatch: {sorted(missing)[:5]} ...")
    return {name: (base[name].astype(np.float32) + delta[name]).astype(np.float32)
            for name in base}


def delta_statistics(
    finetuned: Dict[str, np.ndarray],
    base: Dict[str, np.ndarray],
) -> Dict[str, Dict[str, float]]:
    """Per-tensor magnitude statistics used for the Fig 3 reproduction.

    Returns, for each tensor, the max |value| and standard deviation of the
    base weight, the fine-tuned weight, and the delta.  The paper's claim is
    ``max|Δ| ≪ max|w|`` and a tighter std.
    """
    stats = {}
    for name, wf in finetuned.items():
        wb = base[name]
        d = wf - wb
        stats[name] = {
            "base_absmax": float(np.max(np.abs(wb))),
            "base_std": float(np.std(wb)),
            "finetuned_absmax": float(np.max(np.abs(wf))),
            "finetuned_std": float(np.std(wf)),
            "delta_absmax": float(np.max(np.abs(d))),
            "delta_std": float(np.std(d)),
        }
    return stats
