"""AWQ: activation-aware weight quantization (Lin et al., MLSys '24).

The Table 1 quantization-only baseline.  AWQ observes that a small fraction
of weight channels matter disproportionately because their *activations* are
large, and protects them by scaling channels up before quantization (and
down after dequantization).  The per-channel scale is ``s = s_x^α`` with the
exponent α grid-searched to minimize the layer reconstruction error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .configs import CompressionConfig
from .quant import dequantize, fit_grid, quantize
from .sparsegpt import OBSResult

__all__ = ["awq_compress"]


def awq_compress(
    weight: np.ndarray,
    x: Optional[np.ndarray],
    config: CompressionConfig,
    n_grid: int = 20,
) -> OBSResult:
    """Quantize ``weight`` (rows=out, cols=in) with activation-aware scaling.

    ``x`` is (n_samples, cols); without it the search degenerates to α = 0
    (plain round-to-nearest).  AWQ does not prune, so the mask is all-True.
    """
    rows, cols = weight.shape
    group_size = min(config.group_size, cols)
    w32 = weight.astype(np.float32)

    if x is None or x.size == 0:
        grid = fit_grid(w32, config.bits, group_size, symmetric=config.symmetric)
        codes = quantize(w32, grid)
        return OBSResult(dense=dequantize(codes, grid),
                         mask=np.ones_like(w32, dtype=bool),
                         codes=codes.astype(np.uint16), grid=grid)

    x32 = x.reshape(-1, cols).astype(np.float32)
    act_scale = np.mean(np.abs(x32), axis=0) + 1e-8

    best = None
    best_loss = np.inf
    best_alpha = 0.0
    ref = x32 @ w32.T
    for step in range(n_grid + 1):
        alpha = step / n_grid
        s = act_scale ** alpha
        s = s / np.sqrt(np.max(s) * np.min(s))  # normalize the scale range
        scaled = w32 * s[None, :]
        grid = fit_grid(scaled, config.bits, group_size,
                        symmetric=config.symmetric)
        codes = quantize(scaled, grid)
        deq = dequantize(codes, grid) / s[None, :]
        loss = float(np.mean((ref - x32 @ deq.T) ** 2))
        if loss < best_loss:
            best_loss = loss
            best_alpha = alpha
            best = (codes, grid, deq, s)

    codes, grid, deq, s = best
    result = OBSResult(dense=deq.astype(np.float32),
                       mask=np.ones_like(w32, dtype=bool),
                       codes=codes.astype(np.uint16), grid=grid,
                       reconstruction_error=best_loss)
    # stash the chosen scales so the packed format can invert them at load
    result.awq_alpha = best_alpha  # type: ignore[attr-defined]
    result.awq_scales = s  # type: ignore[attr-defined]
    return result
