"""Compression-ratio accounting and the Fig 5 per-stage byte walk."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .artifacts import CompressedDelta, FP16_BYTES
from .configs import CompressionConfig

__all__ = ["analytic_ratio", "pipeline_stage_bytes", "StageBytes",
           "artifact_summary"]


@dataclass
class StageBytes:
    """Bytes per Fig-5 stage for a reference span of weights."""

    stage: str
    nbytes: float
    cumulative_ratio: float


def analytic_ratio(config: CompressionConfig,
                   include_index_bits: bool = True) -> float:
    """Closed-form per-matrix compression ratio (ignoring grid metadata).

    For 2:4 + 4-bit: per 4 weights, FP16 stores 64 bits; the packed format
    stores 2 values x 4 bits + 2 indices x 2 bits = 12 bits -> 5.33x,
    matching Fig 5's annotation.
    """
    bits_per_value = 16.0
    if config.prunes:
        kept = config.sparsity_m - config.sparsity_n
        stored = kept * min(config.bits, 16)
        if include_index_bits:
            stored += kept * 2
        return (config.sparsity_m * bits_per_value) / stored
    if config.quantizes:
        return bits_per_value / config.bits
    return 1.0


def pipeline_stage_bytes(config: CompressionConfig,
                         n_weights: int = 64) -> List[StageBytes]:
    """Walk ``n_weights`` FP16 weights through the pipeline stages (Fig 5).

    Fig 5 uses a 64-value span: 128 bytes FP16; after 2:4 pruning, 64 bytes
    of survivors + 8 bytes of 2-bit indices (1.77x); after 2-bit/4-bit
    quantization, 8/16 bytes of packed values + the same indices
    (8.53x / 5.33x).
    """
    stages = [StageBytes("fp16", n_weights * FP16_BYTES, 1.0)]
    original = n_weights * FP16_BYTES
    kept = n_weights
    index_bytes = 0.0
    if config.prunes:
        kept = n_weights * (config.sparsity_m - config.sparsity_n) \
            // config.sparsity_m
        index_bytes = kept * 2 / 8.0
        pruned_total = kept * FP16_BYTES + index_bytes
        stages.append(StageBytes("2:4 pruned", pruned_total,
                                 original / pruned_total))
    if config.quantizes:
        value_bytes = kept * config.bits / 8.0
        total = value_bytes + index_bytes
        stages.append(StageBytes(f"int{config.bits} packed", total,
                                 original / total))
    return stages


def artifact_summary(artifact: CompressedDelta) -> Dict[str, float]:
    """Headline numbers for reports and EXPERIMENTS.md."""
    breakdowns = [layer.nbytes_breakdown() for layer in artifact.layers.values()]
    return {
        "nbytes": float(artifact.nbytes()),
        "nbytes_uncompressed": float(artifact.nbytes_uncompressed()),
        "compression_ratio": artifact.compression_ratio(),
        "linear_compression_ratio": artifact.linear_compression_ratio(),
        "value_bytes": float(sum(b["values"] for b in breakdowns)),
        "index_bytes": float(sum(b["indices"] for b in breakdowns)),
        "metadata_bytes": float(sum(b["metadata"] for b in breakdowns)),
        "extras_bytes": float(sum(a.size * FP16_BYTES
                                  for a in artifact.extras.values())),
        "mean_reconstruction_error": artifact.mean_reconstruction_error(),
    }
