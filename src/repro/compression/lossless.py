"""Stage-4 lossless compression (paper Fig 5 step 4).

The paper uses nvcomp's GDeflate so the GPU can decompress in hardware; the
pipeline role — shrinking the packed byte stream when disk/NFS bandwidth is
the bottleneck, at the cost of decompression time — is identical with any
deflate-family codec, so we use zlib behind the same interface.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["LosslessCodec", "ZlibCodec", "compress_array", "decompress_array"]


@dataclass
class LosslessCodec:
    """Interface: subclasses provide ``compress``/``decompress`` on bytes and
    report a decompression throughput for the serving cost model."""

    name: str = "identity"
    decompress_gbps: float = float("inf")  # bytes pass through untouched

    def compress(self, raw: bytes) -> bytes:
        return raw

    def decompress(self, blob: bytes) -> bytes:
        return blob


@dataclass
class ZlibCodec(LosslessCodec):
    """Deflate codec standing in for nvcomp GDeflate.

    ``decompress_gbps`` defaults to the GDeflate-on-GPU throughput nvcomp
    reports (~50 GB/s on A100-class parts), which is what the serving-side
    swap model charges when lossless mode is on.
    """

    name: str = "gdeflate(zlib)"
    level: int = 6
    decompress_gbps: float = 50.0

    def compress(self, raw: bytes) -> bytes:
        return zlib.compress(raw, self.level)

    def decompress(self, blob: bytes) -> bytes:
        return zlib.decompress(blob)


def compress_array(arr: np.ndarray, codec: LosslessCodec) -> bytes:
    """Compress an ndarray's raw bytes."""
    return codec.compress(np.ascontiguousarray(arr).tobytes())


def decompress_array(blob: bytes, codec: LosslessCodec, dtype, shape) -> np.ndarray:
    """Inverse of :func:`compress_array`."""
    raw = codec.decompress(blob)
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
