"""Group-wise uniform quantizers (the GPTQ/SparseGPT quantization grid).

A quantizer maps float values ``w`` to integer codes
``q = clamp(round(w / scale) + zero, 0, 2^bits - 1)`` with one
``(scale, zero)`` pair per group of input channels per output row.
The delta's concentrated value distribution (paper Fig 3) is exactly what
makes this grid dense — the same machinery applied to raw fine-tuned weights
(the SparseGPT baseline) must cover a wider range and loses precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["QuantGrid", "fit_grid", "quantize", "dequantize",
           "quantize_dequantize", "quantization_mse"]


@dataclass
class QuantGrid:
    """Per-(row, group) affine quantization grid.

    ``scale`` and ``zero`` have shape (rows, n_groups); ``zero`` is stored as
    float but holds integer values in asymmetric mode.
    """

    bits: int
    group_size: int
    scale: np.ndarray
    zero: np.ndarray
    symmetric: bool = False

    @property
    def qmax(self) -> int:
        return (1 << self.bits) - 1

    def nbytes_metadata(self) -> int:
        """Bytes of grid metadata: FP16 scale + one byte zero per group."""
        zero_bytes = 0 if self.symmetric else self.scale.size
        return self.scale.size * 2 + zero_bytes


def _group_view(w: np.ndarray, group_size: int) -> Tuple[np.ndarray, int]:
    """Reshape (rows, cols) -> (rows, n_groups, group_size), padding cols."""
    rows, cols = w.shape
    n_groups = -(-cols // group_size)
    padded = n_groups * group_size
    if padded != cols:
        w = np.pad(w, ((0, 0), (0, padded - cols)))
    return w.reshape(rows, n_groups, group_size), cols


def fit_grid(
    w: np.ndarray,
    bits: int,
    group_size: int,
    symmetric: bool = False,
    mask: Optional[np.ndarray] = None,
) -> QuantGrid:
    """Fit min/max quantization grids per (row, group).

    ``mask`` (same shape as ``w``, True = kept) lets the grid ignore pruned
    positions so the surviving values get the full integer range.
    """
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weight, got shape {w.shape}")
    grouped, _ = _group_view(w, group_size)
    if mask is not None:
        gmask, _ = _group_view(mask.astype(bool), group_size)
        big = np.where(gmask, grouped, np.inf)
        small = np.where(gmask, grouped, -np.inf)
        wmin = np.min(big, axis=-1)
        wmax = np.max(small, axis=-1)
        empty = ~np.isfinite(wmin)
        wmin = np.where(empty, 0.0, wmin)
        wmax = np.where(empty, 0.0, wmax)
    else:
        wmin = np.min(grouped, axis=-1)
        wmax = np.max(grouped, axis=-1)

    qmax = (1 << bits) - 1
    if symmetric:
        bound = np.maximum(np.abs(wmin), np.abs(wmax))
        scale = np.where(bound > 0, 2.0 * bound / qmax, 1.0)
        zero = np.full_like(scale, (qmax + 1) / 2.0)
    else:
        wmin = np.minimum(wmin, 0.0)
        wmax = np.maximum(wmax, 0.0)
        span = wmax - wmin
        scale = np.where(span > 0, span / qmax, 1.0)
        zero = np.round(-wmin / scale)
    # guard against float32 underflow on subnormal inputs
    scale = np.maximum(scale, np.finfo(np.float32).tiny)
    return QuantGrid(bits=bits, group_size=group_size,
                     scale=scale.astype(np.float32),
                     zero=zero.astype(np.float32), symmetric=symmetric)


def quantize(w: np.ndarray, grid: QuantGrid) -> np.ndarray:
    """Map floats to integer codes (same shape, dtype uint8/uint16)."""
    grouped, cols = _group_view(w, grid.group_size)
    q = np.round(grouped / grid.scale[..., None]) + grid.zero[..., None]
    q = np.clip(q, 0, grid.qmax)
    dtype = np.uint8 if grid.bits <= 8 else np.uint16
    flat = q.reshape(q.shape[0], -1)[:, :cols]
    return flat.astype(dtype)


def dequantize(q: np.ndarray, grid: QuantGrid) -> np.ndarray:
    """Inverse of :func:`quantize` (up to rounding)."""
    grouped, cols = _group_view(q.astype(np.float32), grid.group_size)
    w = (grouped - grid.zero[..., None]) * grid.scale[..., None]
    return w.reshape(w.shape[0], -1)[:, :cols].astype(np.float32)


def quantize_dequantize(
    w: np.ndarray,
    bits: int,
    group_size: int,
    symmetric: bool = False,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-shot fake-quantization: fit grid, quantize, dequantize."""
    grid = fit_grid(w, bits, group_size, symmetric=symmetric, mask=mask)
    return dequantize(quantize(w, grid), grid)


def quantization_mse(w: np.ndarray, bits: int, group_size: int,
                     symmetric: bool = False) -> float:
    """Mean squared error of round-trip quantization (used by tests and the
    Fig 3 'deltas are more quantizable' demonstration)."""
    wq = quantize_dequantize(w, bits, group_size, symmetric=symmetric)
    return float(np.mean((w - wq) ** 2))
