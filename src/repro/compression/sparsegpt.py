"""SparseGPT-style optimal-brain-surgeon solver (paper §4.2, Algorithm 1).

Joint N:M pruning + group quantization that minimizes the layer-output error
``||W·X − W̃·X||²`` (Eq. 1) using second-order information from a calibration
set.  The algorithm processes columns left-to-right in blocks; after fixing
each column (prune decision + quantized value) it distributes the incurred
error over the not-yet-fixed columns via the inverse-Hessian row — the
classic OBS update that lets aggressive compression preserve accuracy
without retraining.

This is a faithful numpy port of the published SparseGPT procedure
(Frantar & Alistarh, 2023) as adapted by ΔCompress to operate on *deltas*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .configs import CompressionConfig
from .quant import QuantGrid

__all__ = ["OBSResult", "hessian_from_inputs", "obs_compress", "rtn_compress"]


@dataclass
class OBSResult:
    """Output of a layer-wise compression solve.

    Attributes:
        dense: compressed-then-dequantized matrix (float32, exact zeros at
            pruned positions) — the ``Q ⊙ M`` of Algorithm 1.
        mask: boolean keep-mask (all True when pruning is disabled).
        codes: integer quantization codes (rows × cols), or None for FP16.
        grid: the per-(row, group) quantization grid, or None for FP16.
        reconstruction_error: mean squared output error on the calibration
            inputs, ``mean((W X^T − W̃ X^T)²)``, if inputs were provided.
    """

    dense: np.ndarray
    mask: np.ndarray
    codes: Optional[np.ndarray]
    grid: Optional[QuantGrid]
    reconstruction_error: float = 0.0


def hessian_from_inputs(x: np.ndarray, cols: int) -> np.ndarray:
    """Accumulate the layer Hessian ``H = X^T X`` (float64).

    ``x`` is (n_samples, in_features); an empty ``x`` yields the identity,
    which degrades the solver to round-to-nearest (RTN) — a supported
    no-calibration fallback.
    """
    if x is None or x.size == 0:
        return np.eye(cols, dtype=np.float64)
    x64 = x.reshape(-1, cols).astype(np.float64)
    return x64.T @ x64


def _fit_column_group(w_block: np.ndarray, bits: int, symmetric: bool):
    """Min/max grid over a (rows, group) block: per-row scale & zero."""
    qmax = (1 << bits) - 1
    wmin = np.minimum(w_block.min(axis=1), 0.0)
    wmax = np.maximum(w_block.max(axis=1), 0.0)
    if symmetric:
        bound = np.maximum(np.abs(wmin), np.abs(wmax))
        scale = np.where(bound > 0, 2.0 * bound / qmax, 1.0)
        zero = np.full_like(scale, (qmax + 1) / 2.0)
    else:
        span = wmax - wmin
        scale = np.where(span > 0, span / qmax, 1.0)
        zero = np.round(-wmin / scale)
    return scale, zero


def _quantize_column(w: np.ndarray, scale, zero, qmax: int):
    """Quantize one column with per-row grids; returns (codes, dequantized)."""
    q = np.clip(np.round(w / scale) + zero, 0, qmax)
    return q, (q - zero) * scale


def obs_compress(
    weight: np.ndarray,
    x: Optional[np.ndarray],
    config: CompressionConfig,
) -> OBSResult:
    """Compress one weight matrix (rows = out, cols = in) against inputs.

    ``x`` is (n_samples, cols) calibration input to this layer; pass None to
    run without second-order information.
    """
    rows, cols = weight.shape
    n, m = config.sparsity_n, config.sparsity_m
    if config.prunes and cols % m != 0:
        raise ValueError(f"cols ({cols}) must divide by m ({m}) for N:M pruning")
    group_size = min(config.group_size, cols)

    w = weight.astype(np.float64).copy()
    h = hessian_from_inputs(x, cols)

    # dead input channels carry no signal: zero their weights, fix diag
    dead = np.diag(h) == 0
    if np.any(dead):
        h[dead, dead] = 1.0
        w[:, dead] = 0.0

    damp = config.damp_percent * float(np.mean(np.diag(h)))
    h[np.diag_indices(cols)] += max(damp, 1e-10)

    # upper Cholesky factor U of H^-1 (H^-1 = U^T U); diag(U) are the OBS d_j
    hinv = np.linalg.inv(h)
    # symmetrize to guard against numerical asymmetry before Cholesky
    hinv = (hinv + hinv.T) / 2.0
    try:
        u = np.linalg.cholesky(hinv).T
    except np.linalg.LinAlgError:
        # heavily-damped fallback
        hinv += np.eye(cols) * (1e-6 * np.mean(np.diag(hinv)))
        u = np.linalg.cholesky(hinv).T

    q_dense = np.zeros_like(w)
    mask = np.ones((rows, cols), dtype=bool)
    codes = np.zeros((rows, cols), dtype=np.uint16) if config.quantizes else None
    n_groups = -(-cols // group_size)
    scales = np.ones((rows, n_groups), dtype=np.float32)
    zeros = np.zeros((rows, n_groups), dtype=np.float32)
    qmax = (1 << config.bits) - 1

    blocksize = max(config.blocksize, group_size)
    col_scale = np.ones(rows)
    col_zero = np.zeros(rows)

    for i1 in range(0, cols, blocksize):
        i2 = min(i1 + blocksize, cols)
        count = i2 - i1
        w1 = w[:, i1:i2].copy()
        q1 = np.zeros_like(w1)
        err1 = np.zeros_like(w1)
        u1 = u[i1:i2, i1:i2]
        mask1 = np.ones((rows, count), dtype=bool)
        diag_u1 = np.diag(u1)

        for j in range(count):
            col = i1 + j
            wj = w1[:, j]
            d = diag_u1[j]

            if config.prunes and col % m == 0:
                # OBS saliency over the next m columns of the *updated* block
                span = min(m, count - j)
                saliency = w1[:, j:j + span] ** 2 / (diag_u1[j:j + span] ** 2)
                order = np.argsort(saliency, axis=1, kind="stable")
                prune_idx = order[:, :n]
                block_mask = np.ones((rows, span), dtype=bool)
                np.put_along_axis(block_mask, prune_idx, False, axis=1)
                mask1[:, j:j + span] = block_mask

            if config.quantizes and col % group_size == 0:
                g_end = min(col + group_size, cols)
                # fit the grid on the updated values of this column group
                if g_end <= i2:
                    w_group = w1[:, j:j + (g_end - col)]
                else:
                    w_group = np.concatenate(
                        [w1[:, j:], w[:, i2:g_end]], axis=1)
                col_scale, col_zero = _fit_column_group(
                    w_group, config.bits, config.symmetric)
                g_idx = col // group_size
                scales[:, g_idx] = col_scale
                zeros[:, g_idx] = col_zero

            keep = mask1[:, j]
            if config.quantizes:
                cj, qj = _quantize_column(wj, col_scale, col_zero, qmax)
                codes[:, col] = np.where(keep, cj, 0).astype(np.uint16)
                qj = np.where(keep, qj, 0.0)
            else:
                qj = np.where(keep, wj, 0.0)

            q1[:, j] = qj
            e = (wj - qj) / d
            w1[:, j:] -= np.outer(e, u1[j, j:])
            err1[:, j] = e

        q_dense[:, i1:i2] = q1
        mask[:, i1:i2] = mask1
        if i2 < cols:
            w[:, i2:] -= err1 @ u[i1:i2, i2:]

    dense = q_dense.astype(np.float32)
    recon_err = 0.0
    if x is not None and x.size:
        x32 = x.reshape(-1, cols).astype(np.float32)
        diff = x32 @ (weight.astype(np.float32) - dense).T
        recon_err = float(np.mean(diff ** 2))

    grid = None
    if config.quantizes:
        grid = QuantGrid(bits=config.bits, group_size=group_size,
                         scale=scales, zero=zeros,
                         symmetric=config.symmetric)
    return OBSResult(dense=dense, mask=mask, codes=codes, grid=grid,
                     reconstruction_error=recon_err)


def rtn_compress(weight: np.ndarray, config: CompressionConfig) -> OBSResult:
    """Round-to-nearest baseline: magnitude N:M mask + plain group quant.

    No second-order correction — the ablation point showing why the OBS
    update matters.
    """
    from .quant import dequantize, fit_grid, quantize
    from .sparsity import nm_mask

    mask = (nm_mask(weight, config.sparsity_n, config.sparsity_m)
            if config.prunes else np.ones_like(weight, dtype=bool))
    if not config.quantizes:
        return OBSResult(dense=np.where(mask, weight, 0).astype(np.float32),
                         mask=mask, codes=None, grid=None)
    grid = fit_grid(weight, config.bits, min(config.group_size, weight.shape[1]),
                    symmetric=config.symmetric, mask=mask)
    codes = quantize(weight, grid)
    dense = np.where(mask, dequantize(codes, grid), 0.0).astype(np.float32)
    codes = np.where(mask, codes, 0).astype(np.uint16)
    return OBSResult(dense=dense, mask=mask, codes=codes, grid=grid)
