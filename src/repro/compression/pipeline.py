"""The ΔCompress pipeline driver (paper §4.1 Fig 5 + §4.2 Algorithm 1).

Layer-by-layer over the transformer blocks:

1. run the (partially reconstructed) model forward on the calibration batch
   to capture each linear layer's input ``X_n``;
2. extract the delta ``Δ = w_f − w_b`` (or take ``w_f`` directly for the
   direct-compression baselines);
3. solve for the pruned+quantized ``Q ⊙ M`` with the configured algorithm
   (OBS / AWQ / RTN);
4. **reconstruct** the served weight ``w̃ = Q ⊙ M + w_b`` in place and
   recompute the block output as the next block's calibration input — the
   step that distinguishes ΔCompress from running SparseGPT on the delta
   naively (without it, small-magnitude deltas drive activations toward
   zero and calibration collapses in deep layers);
5. pack the result (values + 2-bit indices + grids) and optionally apply the
   stage-4 lossless codec.

Memory profile matches the paper's claim: only one block's activations are
alive at a time.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..nn.transformer import TransformerModel
from .artifacts import CompressedDelta, CompressedLayer
from .awq import awq_compress
from .configs import CompressionConfig
from .lossless import LosslessCodec, ZlibCodec, compress_array
from .packing import pack_codes, pack_nm_sparse
from .sparsegpt import OBSResult, obs_compress, rtn_compress

__all__ = ["DeltaCompressor", "CompressionReport"]


@dataclass
class CompressionReport:
    """Timing/quality summary of one compression run."""

    model_id: str
    config: CompressionConfig
    seconds: float
    layer_errors: Dict[str, float]
    compression_ratio: float
    linear_compression_ratio: float


class DeltaCompressor:
    """Compresses registered FMT models into :class:`CompressedDelta`s.

    This is the offline component of Fig 4 — it runs once at registration
    time, never on the serving critical path.
    """

    def __init__(self, config: CompressionConfig,
                 codec: Optional[LosslessCodec] = None):
        self.config = config
        if config.lossless and codec is None:
            codec = ZlibCodec()
        self.codec = codec
        self.last_report: Optional[CompressionReport] = None

    # ------------------------------------------------------------------ #
    def compress(
        self,
        finetuned: TransformerModel,
        base_state: Dict[str, np.ndarray],
        calibration_tokens: Optional[np.ndarray],
        model_id: str = "finetuned",
        base_model_id: str = "base",
    ) -> CompressedDelta:
        """Run the full pipeline; returns the packed artifact.

        ``calibration_tokens`` is an int array (n_samples, seq_len) — the
        small calibration set developers supply at registration (§4.2
        recommends ~256 samples).  ``None`` falls back to calibration-free
        RTN behaviour inside the solver.
        """
        config = self.config
        # real wall time of actual compression compute (offline tooling,
        # not simulation) — the one legitimate wall-clock in src/
        started = time.perf_counter()  # simlint: disable=SIM001
        model = self._clone(finetuned)
        own_names = set(name for name, _ in model.named_parameters())
        if set(base_state) != own_names:
            raise KeyError("base state dict does not match the model")

        layers: Dict[str, CompressedLayer] = {}
        errors: Dict[str, float] = {}

        hidden = None
        if calibration_tokens is not None:
            tokens = np.asarray(calibration_tokens, dtype=np.int64)
            if tokens.ndim == 1:
                tokens = tokens[None, :]
            hidden = model.embed_tokens(tokens)

        for block_idx, block in enumerate(model.layers):
            captured = self._capture_block_inputs(block, hidden)
            for layer_name, linear in self._block_linears(block_idx, block):
                w_f = linear.weight.data.astype(np.float32)
                w_b = base_state[layer_name].astype(np.float32)
                target = (w_f - w_b) if config.delta_mode else w_f
                x = captured.get(self._suffix(layer_name))
                result = self._solve(target, x, config)
                layers[layer_name] = self._pack(layer_name, result)
                errors[layer_name] = result.reconstruction_error
                # Algorithm 1 line 6: reconstruct the served weight in place
                served = result.dense + w_b if config.delta_mode else result.dense
                linear.weight.data = served.astype(np.float32)
            if hidden is not None:
                # Algorithm 1 line 7: next block's input from reconstructed w
                hidden = block(hidden)

        extras = self._collect_extras(model, base_state, own_names,
                                      set(layers), config.delta_mode)
        artifact = CompressedDelta(
            model_id=model_id,
            base_model_id=base_model_id,
            config=config,
            layers=layers,
            extras=extras,
            reconstruction_errors=errors,
        )
        self.last_report = CompressionReport(
            model_id=model_id,
            config=config,
            seconds=time.perf_counter() - started,  # simlint: disable=SIM001
            layer_errors=errors,
            compression_ratio=artifact.compression_ratio(),
            linear_compression_ratio=artifact.linear_compression_ratio(),
        )
        return artifact

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _clone(model: TransformerModel) -> TransformerModel:
        clone = TransformerModel(model.config, seed=0)
        clone.load_state_dict(model.state_dict())
        return clone

    @staticmethod
    def _block_linears(block_idx: int, block):
        """Yield (dotted_name, Linear) for the block's seven projections."""
        from ..nn.transformer import LINEAR_LAYER_KINDS
        attn_kinds = {"q_proj", "k_proj", "v_proj", "o_proj"}
        for kind in LINEAR_LAYER_KINDS:
            owner_name = "self_attn" if kind in attn_kinds else "mlp"
            owner = getattr(block, owner_name)
            yield (f"layers.{block_idx}.{owner_name}.{kind}.weight",
                   getattr(owner, kind))

    @staticmethod
    def _suffix(layer_name: str) -> str:
        """'layers.3.self_attn.q_proj.weight' -> 'self_attn.q_proj.weight'."""
        return layer_name.split(".", 2)[2]

    def _capture_block_inputs(self, block, hidden) -> Dict[str, np.ndarray]:
        """Forward the block with input caching on; harvest each linear's X."""
        if hidden is None:
            return {}
        block(hidden, cache=True)
        captured = {}
        for name, linear in self._block_linears(0, block):
            x = linear._cached_input
            if x is not None:
                captured[self._suffix(name)] = \
                    x.reshape(-1, linear.in_features).copy()
            linear._cached_input = None
        # clear training ctx left behind by cache=True
        block.self_attn._ctx = None
        block.mlp._ctx = None
        block.input_norm._cached_input = None
        block.post_norm._cached_input = None
        return captured

    def _solve(self, target, x, config) -> OBSResult:
        if config.algorithm == "awq":
            return awq_compress(target, x, config)
        if config.algorithm == "rtn":
            return rtn_compress(target, config)
        return obs_compress(target, x, config)

    def _pack(self, name: str, result: OBSResult) -> CompressedLayer:
        config = self.config
        layer = CompressedLayer(name=name, shape=result.dense.shape,
                                config=config, grid=result.grid)
        if not config.quantizes:
            layer.fp16_values = result.dense.astype(np.float16).astype(np.float32)
        elif config.prunes:
            layer.packed_sparse = pack_nm_sparse(
                result.codes, result.mask, config.bits,
                config.sparsity_n, config.sparsity_m)
        else:
            layer.packed_dense = pack_codes(result.codes, config.bits)
        scales = getattr(result, "awq_scales", None)
        if scales is not None:
            layer.awq_scales = scales.astype(np.float32)
        if config.lossless and self.codec is not None:
            payload = (layer.packed_sparse.values if layer.packed_sparse
                       else layer.packed_dense)
            blob = compress_array(payload, self.codec)
            extra = (layer.packed_sparse.nbytes_indices()
                     if layer.packed_sparse else 0)
            idx_blob_len = 0
            if layer.packed_sparse is not None:
                idx_blob_len = len(compress_array(
                    layer.packed_sparse.indices, self.codec))
            layer.lossless_nbytes = len(blob) + idx_blob_len
        return layer

    @staticmethod
    def _collect_extras(model, base_state, all_names, compressed_names,
                        delta_mode):
        """Uncompressed remainder: embeddings, norms, lm_head.

        Stored as a delta in delta mode (reconstruction adds the base back)
        and as the raw value otherwise, matching
        :meth:`CompressedDelta.to_state_dict`.
        """
        extras = {}
        current = model.state_dict()
        for name in sorted(all_names - compressed_names):
            value = current[name] - base_state[name] if delta_mode else current[name]
            extras[name] = value.astype(np.float32)
        return extras
