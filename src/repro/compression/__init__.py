"""ΔCompress and baseline compression algorithms (paper §4)."""

from .artifacts import FP16_BYTES, CompressedDelta, CompressedLayer
from .awq import awq_compress
from .configs import CompressionConfig
from .delta import apply_delta, delta_statistics, extract_delta
from .lossless import LosslessCodec, ZlibCodec, compress_array, decompress_array
from .metrics import StageBytes, analytic_ratio, artifact_summary, \
    pipeline_stage_bytes
from .packing import (PackedSparseMatrix, pack_codes, pack_nm_sparse,
                      unpack_codes, unpack_nm_sparse)
from .pipeline import CompressionReport, DeltaCompressor
from .quant import (QuantGrid, dequantize, fit_grid, quantization_mse,
                    quantize, quantize_dequantize)
from .serialization import load_compressed_delta, save_compressed_delta
from .sparsegpt import OBSResult, hessian_from_inputs, obs_compress, rtn_compress
from .sparsity import (mask_density, nm_mask, nm_mask_with_scores,
                       unstructured_mask, validate_nm)

__all__ = [
    "FP16_BYTES", "CompressedDelta", "CompressedLayer",
    "awq_compress",
    "CompressionConfig",
    "apply_delta", "delta_statistics", "extract_delta",
    "LosslessCodec", "ZlibCodec", "compress_array", "decompress_array",
    "StageBytes", "analytic_ratio", "artifact_summary", "pipeline_stage_bytes",
    "PackedSparseMatrix", "pack_codes", "pack_nm_sparse", "unpack_codes",
    "unpack_nm_sparse",
    "CompressionReport", "DeltaCompressor",
    "load_compressed_delta", "save_compressed_delta",
    "QuantGrid", "dequantize", "fit_grid", "quantization_mse", "quantize",
    "quantize_dequantize",
    "OBSResult", "hessian_from_inputs", "obs_compress", "rtn_compress",
    "mask_density", "nm_mask", "nm_mask_with_scores", "unstructured_mask",
    "validate_nm",
]
