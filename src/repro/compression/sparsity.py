"""Structured N:M and unstructured sparsity masks.

The paper uses 2:4 structured pruning (≥2 zeros in every 4 contiguous values
along the input dimension) because Ampere-class sparse tensor cores execute
50%-sparse matmuls at up to 2× dense throughput.  Masks here are boolean
arrays with True = *kept*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["nm_mask", "nm_mask_with_scores", "unstructured_mask",
           "validate_nm", "mask_density"]


def nm_mask(w: np.ndarray, n: int = 2, m: int = 4) -> np.ndarray:
    """Magnitude-based N:M mask: in each group of ``m`` contiguous values per
    row, prune the ``n`` smallest |w| (keep ``m - n``)."""
    return nm_mask_with_scores(w, np.abs(w), n=n, m=m)


def nm_mask_with_scores(
    w: np.ndarray,
    scores: np.ndarray,
    n: int = 2,
    m: int = 4,
) -> np.ndarray:
    """N:M mask keeping the ``m - n`` *highest-scored* values per group.

    SparseGPT passes OBS saliency scores ``w^2 / diag(H^-1)^2`` instead of
    plain magnitudes.
    """
    if n == 0:
        return np.ones_like(w, dtype=bool)
    rows, cols = w.shape
    if cols % m != 0:
        raise ValueError(f"columns ({cols}) must be divisible by m ({m})")
    grouped = scores.reshape(rows, cols // m, m)
    # indices of the n smallest scores per group -> pruned
    order = np.argsort(grouped, axis=-1, kind="stable")
    mask = np.ones_like(grouped, dtype=bool)
    np.put_along_axis(mask, order[..., :n], False, axis=-1)
    return mask.reshape(rows, cols)


def unstructured_mask(w: np.ndarray, sparsity: float) -> np.ndarray:
    """Global magnitude mask keeping the top ``1 - sparsity`` fraction."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return np.ones_like(w, dtype=bool)
    k = int(np.floor(sparsity * w.size))
    if k == 0:
        return np.ones_like(w, dtype=bool)
    threshold = np.partition(np.abs(w).reshape(-1), k - 1)[k - 1]
    return np.abs(w) > threshold


def validate_nm(mask: np.ndarray, n: int, m: int) -> bool:
    """Check that every group of ``m`` has at least ``n`` pruned values."""
    rows, cols = mask.shape
    if cols % m != 0:
        return False
    grouped = mask.reshape(rows, cols // m, m)
    kept = grouped.sum(axis=-1)
    return bool(np.all(kept <= m - n))


def mask_density(mask: np.ndarray) -> float:
    """Fraction of kept values."""
    return float(np.mean(mask))
