"""Bit-packing for quantized codes and 2:4 sparse index encoding.

This reproduces the storage format of paper Fig 5:

* dense path: ``32 // bits`` codes per uint32 word;
* 2:4 sparse path: only the kept values' codes are stored, plus a 2-bit
  *position index* per kept value identifying its slot within its group of 4
  (exactly the metadata layout sparse tensor cores consume).

Byte accounting here is what produces the compression ratios of Fig 5 and
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["pack_codes", "unpack_codes", "pack_nm_sparse", "unpack_nm_sparse",
           "PackedSparseMatrix"]


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack an integer array (values < 2^bits) into a flat uint32 array."""
    if bits not in (2, 3, 4, 8, 16):
        raise ValueError(f"unsupported bit width {bits}")
    flat = codes.reshape(-1).astype(np.uint32)
    if np.any(flat >= (1 << bits)):
        raise ValueError(f"code out of range for {bits}-bit packing")
    if bits == 3:
        # 3-bit codes don't tile uint32 evenly; pack 10 per word (30 bits)
        per_word = 10
    else:
        per_word = 32 // bits
    n_words = -(-flat.size // per_word)
    padded = np.zeros(n_words * per_word, dtype=np.uint32)
    padded[: flat.size] = flat
    words = np.zeros(n_words, dtype=np.uint32)
    for slot in range(per_word):
        words |= padded[slot::per_word] << np.uint32(slot * bits)
    return words


def unpack_codes(words: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns ``count`` codes as uint16."""
    per_word = 10 if bits == 3 else 32 // bits
    mask = np.uint32((1 << bits) - 1)
    out = np.zeros(words.size * per_word, dtype=np.uint32)
    for slot in range(per_word):
        out[slot::per_word] = (words >> np.uint32(slot * bits)) & mask
    return out[:count].astype(np.uint16)


@dataclass
class PackedSparseMatrix:
    """A 2:4-pruned, quantized matrix in packed storage.

    Attributes:
        shape: original dense (rows, cols).
        bits: quantization bit width of the stored values.
        values: packed codes of the *kept* values, row-major, group order.
        indices: packed 2-bit within-group positions of kept values.
        kept_per_group: how many values survive per group (m - n).
        m: the group length (4 for 2:4).
    """

    shape: Tuple[int, int]
    bits: int
    values: np.ndarray
    indices: np.ndarray
    kept_per_group: int
    m: int

    def nbytes_values(self) -> int:
        return int(self.values.nbytes)

    def nbytes_indices(self) -> int:
        return int(self.indices.nbytes)

    def nbytes(self) -> int:
        return self.nbytes_values() + self.nbytes_indices()


def pack_nm_sparse(codes: np.ndarray, mask: np.ndarray, bits: int,
                   n: int, m: int) -> PackedSparseMatrix:
    """Pack quantized codes under an N:M mask.

    ``codes`` is the full (rows, cols) integer matrix; only positions where
    ``mask`` is True are stored.  Every group must keep exactly ``m - n``
    values — the invariant 2:4 sparse tensor-core formats require.
    """
    rows, cols = codes.shape
    if cols % m != 0:
        raise ValueError(f"cols ({cols}) must divide by m ({m})")
    kept_per_group = m - n
    n_groups = cols // m
    grouped_codes = codes.reshape(rows, n_groups, m)
    grouped_mask = mask.reshape(rows, n_groups, m)
    kept_counts = grouped_mask.sum(axis=-1)
    if not np.all(kept_counts == kept_per_group):
        raise ValueError(
            f"N:M packing requires exactly {kept_per_group} kept values per "
            f"group of {m}; found groups with "
            f"{sorted(set(np.unique(kept_counts)) - {kept_per_group})} kept")

    # within each group, order kept positions first (stable)
    order = np.argsort(~grouped_mask, axis=-1, kind="stable")
    top = order[..., :kept_per_group]  # positions of stored values
    stored_codes = np.take_along_axis(grouped_codes, top, axis=-1)
    positions = top

    return PackedSparseMatrix(
        shape=(rows, cols),
        bits=bits,
        values=pack_codes(stored_codes, bits),
        indices=pack_codes(positions.astype(np.uint32), 2),
        kept_per_group=kept_per_group,
        m=m,
    )


def unpack_nm_sparse(packed: PackedSparseMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Recover (codes, mask) from packed storage.

    Padded slots (duplicate positions within a group) resolve to the first
    stored value; the mask marks only genuinely stored positions.
    """
    rows, cols = packed.shape
    n_groups = cols // packed.m
    count = rows * n_groups * packed.kept_per_group
    stored = unpack_codes(packed.values, packed.bits, count)
    positions = unpack_codes(packed.indices, 2, count)
    stored = stored.reshape(rows, n_groups, packed.kept_per_group)
    positions = positions.reshape(rows, n_groups, packed.kept_per_group)

    codes = np.zeros((rows, n_groups, packed.m), dtype=np.uint16)
    mask = np.zeros((rows, n_groups, packed.m), dtype=bool)
    # scatter in reverse slot order so slot 0 wins ties (matching pack pad)
    for slot in range(packed.kept_per_group - 1, -1, -1):
        np.put_along_axis(codes, positions[..., slot:slot + 1],
                          stored[..., slot:slot + 1], axis=-1)
        np.put_along_axis(mask, positions[..., slot:slot + 1], True, axis=-1)
    return codes.reshape(rows, cols), mask.reshape(rows, cols)
