"""DeltaZip reproduction (EuroSys '25).

Subpackages:

* ``repro.nn`` — numpy transformer substrate (models, training, LoRA).
* ``repro.compression`` — ΔCompress pipeline + SparseGPT/AWQ baselines.
* ``repro.hardware`` — GPU / memory-hierarchy cost models.
* ``repro.workload`` — trace and arrival-process generators.
* ``repro.sim`` — discrete-event kernel: one clock, typed events.
* ``repro.serving`` — DeltaZip engine, vLLM-SCB baseline, LoRA engine.
* ``repro.evaluation`` — synthetic downstream tasks and accuracy harness.
* ``repro.core`` — the high-level :class:`repro.core.DeltaZip` facade.
"""

__version__ = "1.0.0"
