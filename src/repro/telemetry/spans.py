"""Per-request lifecycle spans assembled from typed kernel events.

A :class:`SpanRecorder` subscribes to a :class:`~repro.sim.SimKernel`
and folds the event stream into :class:`RequestSpan` objects — the
OTel-style view of one request's life: ``queue → prefill → decode →
retire`` (or an immediately-terminal ``shed``/``rejected`` verdict from
the admission layer).  The recorder is a pure observer: it never emits
events, never touches the clock, and its presence cannot change replay
records.

Memory follows the serving stack's ``record_policy`` contract:

* ``KEEP_ALL`` — every closed span is retained;
* ``SAMPLE_K`` — a deterministic Algorithm-R reservoir of ``sample_k``
  closed spans (seeded, so identical runs keep identical samples);
* ``DROP`` — closed spans are discarded entirely.

Under every policy the *open* spans are O(active requests), and the
always-on per-phase duration sketches answer quantile queries without
any retained spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..serving.streaming_metrics import QuantileSketch, RecordPolicy
from ..sim.events import AdmissionDecision, Cancel, PhaseTransition
from ..sim.kernel import SimKernel

__all__ = ["RequestSpan", "SpanRecorder"]

#: fixed entropy for the span reservoir's seed sequence (deterministic,
#: independent of the metrics reservoir's stream)
_SPAN_ENTROPY = 0x5BA2_CAFE

#: lifecycle phases in span order (``transfer`` appears only under
#: disaggregated serving, between the prefill and decode pools)
PHASES = ("queue", "prefill", "transfer", "decode", "retire")


@dataclass
class RequestSpan:
    """One request's lifecycle: phase entry timestamps + attributes.

    Timestamps are ``None`` until the request enters the phase.  A span
    is *closed* once ``retire_s`` is set; ``status`` then carries the
    terminal state (``finished`` / ``cancelled`` / ``expired`` /
    ``shed`` / ``rejected``).  ``decision`` is the admission verdict
    when an admission layer saw the request.
    """

    request_id: int
    tenant_id: Optional[str] = None
    model_id: str = ""
    source: Optional[str] = None
    decision: Optional[str] = None
    cancel_reason: Optional[str] = None
    queue_s: Optional[float] = None
    prefill_s: Optional[float] = None
    transfer_s: Optional[float] = None
    decode_s: Optional[float] = None
    retire_s: Optional[float] = None
    status: str = ""

    @property
    def closed(self) -> bool:
        return self.retire_s is not None

    @property
    def start_s(self) -> Optional[float]:
        for t in (self.queue_s, self.prefill_s, self.transfer_s,
                  self.decode_s, self.retire_s):
            if t is not None:
                return t
        return None

    def duration_s(self) -> Optional[float]:
        """End-to-end span length (None while open or never started)."""
        start = self.start_s
        if start is None or self.retire_s is None:
            return None
        return self.retire_s - start

    def phase_bounds(self) -> List[tuple]:
        """Closed sub-spans as ``(phase, start_s, end_s)`` triples.

        Each phase runs until the next phase the request actually
        entered (skipped phases collapse to nothing); the last one ends
        at retirement.  Empty while the span is open.
        """
        if self.retire_s is None:
            return []
        stamps = [("queue", self.queue_s), ("prefill", self.prefill_s),
                  ("transfer", self.transfer_s), ("decode", self.decode_s)]
        entered = [(name, t) for name, t in stamps if t is not None]
        out: List[tuple] = []
        for i, (name, t) in enumerate(entered):
            end = entered[i + 1][1] if i + 1 < len(entered) \
                else self.retire_s
            out.append((name, t, end))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id, "tenant_id": self.tenant_id,
            "model_id": self.model_id, "source": self.source,
            "decision": self.decision,
            "cancel_reason": self.cancel_reason,
            "queue_s": self.queue_s, "prefill_s": self.prefill_s,
            "transfer_s": self.transfer_s,
            "decode_s": self.decode_s, "retire_s": self.retire_s,
            "status": self.status,
        }


class SpanRecorder:
    """Kernel subscriber assembling :class:`RequestSpan` objects.

    Subscribe with :meth:`subscribe`; read back with :meth:`completed`,
    :meth:`span`, :attr:`active_count`, and :meth:`summary`.
    """

    def __init__(self, policy: RecordPolicy = RecordPolicy.KEEP_ALL,
                 sample_k: int = 256, sample_seed: int = 0) -> None:
        if sample_k < 1:
            raise ValueError("sample_k must be >= 1")
        self.policy = RecordPolicy(policy)
        self._sample_k = sample_k
        self._sample_seed = sample_seed
        self._active: Dict[int, RequestSpan] = {}
        self._closed: List[RequestSpan] = []
        self._rng: Optional[np.random.Generator] = None
        self.n_closed = 0
        self.status_counts: Dict[str, int] = {}
        #: always-on duration sketches, one per phase plus end-to-end
        self.sketches: Dict[str, QuantileSketch] = {
            name: QuantileSketch()
            for name in ("queue", "prefill", "transfer", "decode", "e2e")}

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def subscribe(self, kernel: SimKernel) -> None:
        """Attach this recorder to a kernel's event stream."""
        kernel.subscribe(PhaseTransition, self._on_phase)
        kernel.subscribe(AdmissionDecision, self._on_decision)
        kernel.subscribe(Cancel, self._on_cancel)

    # ------------------------------------------------------------------ #
    # event handlers (pure observation)
    # ------------------------------------------------------------------ #
    def _get(self, request_id: int) -> RequestSpan:
        span = self._active.get(request_id)
        if span is None:
            span = RequestSpan(request_id=request_id)
            self._active[request_id] = span
        return span

    def _on_phase(self, event: PhaseTransition) -> None:
        span = self._get(event.request_id)
        if event.model_id:
            span.model_id = event.model_id
        if event.tenant_id is not None:
            span.tenant_id = event.tenant_id
        if event.source is not None:
            span.source = event.source
        if event.phase == "queue" and span.queue_s is None:
            span.queue_s = event.time
        elif event.phase == "prefill" and span.prefill_s is None:
            span.prefill_s = event.time
        elif event.phase == "transfer" and span.transfer_s is None:
            span.transfer_s = event.time
        elif event.phase == "decode" and span.decode_s is None:
            span.decode_s = event.time
        elif event.phase == "retire" and span.retire_s is None:
            span.retire_s = event.time
            span.status = event.status or "finished"
            self._close(span)

    def _on_decision(self, event: AdmissionDecision) -> None:
        span = self._get(event.request_id)
        span.decision = event.decision
        if event.model_id:
            span.model_id = event.model_id
        if event.tenant_id:
            span.tenant_id = event.tenant_id
        if event.decision in ("shed", "rejected") and span.retire_s is None:
            # never reaches an engine: terminal at the verdict itself
            span.queue_s = span.queue_s if span.queue_s is not None \
                else event.time
            span.retire_s = event.time
            span.status = event.decision
            self._close(span)

    def _on_cancel(self, event: Cancel) -> None:
        span = self._active.get(event.request_id)
        if span is not None:
            span.cancel_reason = event.reason

    # ------------------------------------------------------------------ #
    # retention
    # ------------------------------------------------------------------ #
    def _close(self, span: RequestSpan) -> None:
        self._active.pop(span.request_id, None)
        self.n_closed += 1
        self.status_counts[span.status] = \
            self.status_counts.get(span.status, 0) + 1
        for name, start, end in span.phase_bounds():
            self.sketches[name].add(end - start)
        total = span.duration_s()
        if total is not None:
            self.sketches["e2e"].add(total)
        if self.policy is RecordPolicy.KEEP_ALL:
            self._closed.append(span)
        elif self.policy is RecordPolicy.SAMPLE_K:
            self._offer_sample(span)
        # DROP: discard

    def _offer_sample(self, span: RequestSpan) -> None:
        """Algorithm-R reservoir over closed spans (deterministic)."""
        if len(self._closed) < self._sample_k:
            self._closed.append(span)
            return
        if self._rng is None:
            seq = np.random.SeedSequence(
                _SPAN_ENTROPY, spawn_key=(self._sample_seed,))
            self._rng = np.random.Generator(np.random.PCG64(seq))
        j = int(self._rng.integers(0, self.n_closed))
        if j < self._sample_k:
            self._closed[j] = span

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #
    @property
    def active_count(self) -> int:
        """Open (in-flight) spans — O(active) under every policy."""
        return len(self._active)

    def span(self, request_id: int) -> Optional[RequestSpan]:
        """The open span for a live request (closed spans: see
        :meth:`completed`)."""
        return self._active.get(request_id)

    def completed(self) -> List[RequestSpan]:
        """Retained closed spans (all / sampled / none, per policy)."""
        return list(self._closed)

    def summary(self) -> Dict[str, object]:
        """Counts plus per-phase duration quantiles from the sketches."""
        phases: Dict[str, Dict[str, float]] = {}
        for name, sketch in self.sketches.items():
            phases[name] = {"p50_s": sketch.quantile(50.0),
                            "p95_s": sketch.quantile(95.0),
                            "mean_s": sketch.mean}
        return {"n_closed": self.n_closed,
                "n_active": self.active_count,
                "n_retained": len(self._closed),
                "status_counts": dict(sorted(self.status_counts.items())),
                "phases": phases}

    def clear(self) -> None:
        """Fresh timeline: drop every span, counter, and sketch (the
        reservoir reseeds so a reset run resamples identically)."""
        self._active.clear()
        self._closed.clear()
        self._rng = None
        self.n_closed = 0
        self.status_counts.clear()
        for name in list(self.sketches):
            self.sketches[name] = QuantileSketch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecorder(policy={self.policy.value}, "
                f"active={self.active_count}, closed={self.n_closed})")
