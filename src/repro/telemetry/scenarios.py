"""Named stress drills with asserted recovery invariants.

Production teams script failure drills ("kill a replica mid-burst, watch
the backlog drain") and gate on *invariants*, not on eyeballing a chart.
This module packages four such drills over the serving stack, each
returning a :class:`ScenarioReport` whose invariants are hard pass/fail
checks evaluated from the telemetry gauge series:

* ``replica-failure-mid-burst`` — drain the busiest replica in the
  middle of a burst; the autoscaler must re-spawn (revive) capacity and
  the backlog must fall back under the scale-up watermark.
* ``thundering-herd`` — a quiet cluster hit by a request spike; the
  autoscaler must scale up and the herd must drain.
* ``scale-from-zero`` — a cold (floor) deployment meets sustained load;
  capacity must reach the demanded level and the queue must drain.
* ``noisy-neighbor`` — one tenant floods a shared replica under VTC
  fair queueing + shedding; the victim tenant's SLO attainment must hold
  at (or recover to) its pre-fault level.

Every drill is seeded and fully deterministic — same name + seed +
quick flag → identical reports — which is what makes them CI-gateable.

Run them via ``python -m repro.cli scenarios <name>|all [--quick]`` or
:func:`run_scenario` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..hardware import Cluster, GPUNode, node_from_name
from ..serving import (Autoscaler, ClusterGateway, EngineConfig, LLAMA_7B,
                       ModelManager, SchedulerConfig, ServingEngine,
                       ServingGateway, Tenant, TenantGateway, create_engine)
from ..workload import TenantWorkload, multi_tenant_trace, synthetic_trace
from ..workload.spec import Trace
from . import Telemetry
from .gauges import GaugeSnapshot

__all__ = [
    "InvariantResult", "ScenarioReport", "SCENARIO_NAMES", "run_scenario",
    "run_all",
]


@dataclass(frozen=True)
class InvariantResult:
    """One asserted recovery invariant: what was required, what held."""

    name: str
    passed: bool
    detail: str


@dataclass
class ScenarioReport:
    """The outcome of one drill: invariants + the gauge series behind
    them (exportable as the CI artifact)."""

    name: str
    description: str
    invariants: List[InvariantResult] = field(default_factory=list)
    gauges: List[GaugeSnapshot] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(inv.passed for inv in self.invariants)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "description": self.description,
            "ok": self.ok,
            "invariants": [{"name": i.name, "passed": i.passed,
                            "detail": i.detail} for i in self.invariants],
            "metrics": dict(self.metrics),
            "gauge_series": [g.as_dict() for g in self.gauges],
        }


# --------------------------------------------------------------------- #
# shared builders
# --------------------------------------------------------------------- #
def _manager(n_models: int, ratio: float = 8.0) -> ModelManager:
    manager = ModelManager(LLAMA_7B)
    manager.register_base("base")
    for i in range(n_models):
        manager.register_delta(f"variant-{i:02d}", "base", ratio)
    return manager


def _engine_config() -> EngineConfig:
    return EngineConfig(tp_degree=1)


def _scheduler_config() -> SchedulerConfig:
    return SchedulerConfig(max_batch_requests=8, max_concurrent_deltas=4)


def _cluster_stack(n_models: int, autoscaler: Autoscaler,
                   telemetry: Telemetry, n_replicas: int = 1,
                   max_nodes: int = 4) -> ClusterGateway:
    manager = _manager(n_models)

    def factory(node: GPUNode) -> ServingEngine:
        return create_engine("deltazip", manager, node,
                             scheduler_config=_scheduler_config(),
                             engine_config=_engine_config())

    return ClusterGateway(
        engine_factory=factory,
        cluster=Cluster.from_name("a800", n_nodes=max_nodes,
                                  gpus_per_node=1),
        n_replicas=n_replicas, balancer="least-outstanding",
        autoscaler=autoscaler, telemetry=telemetry)


def _first_below(series: List[GaugeSnapshot], after_s: float,
                 value: Callable[[GaugeSnapshot], float],
                 threshold: float) -> Optional[float]:
    """Earliest snapshot time >= after_s where value() <= threshold."""
    for snap in series:
        if snap.time_s >= after_s and value(snap) <= threshold:
            return snap.time_s
    return None


def _check(invariants: List[InvariantResult], name: str, passed: bool,
           detail: str) -> None:
    invariants.append(InvariantResult(name=name, passed=passed,
                                      detail=detail))


# --------------------------------------------------------------------- #
# the drills
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, Callable[[bool, int], ScenarioReport]] = {}


_Drill = Callable[[bool, int], ScenarioReport]


def _register(name: str) -> Callable[[_Drill], _Drill]:
    def deco(fn: _Drill) -> _Drill:
        _REGISTRY[name] = fn
        return fn
    return deco


@_register("replica-failure-mid-burst")
def _replica_failure(quick: bool, seed: int) -> ScenarioReport:
    """Drain a replica at the peak of a burst; capacity must recover."""
    duration = 120.0 if quick else 360.0
    rate = 3.0 if quick else 4.0
    n_models = 4
    high_wm = 4.0
    autoscaler = Autoscaler(min_replicas=2, max_replicas=4,
                            high_queue_per_replica=high_wm,
                            low_queue_per_replica=0.5,
                            check_interval_s=2.0,
                            scale_up_cooldown_s=4.0,
                            scale_down_cooldown_s=60.0)
    telemetry = Telemetry(interval_s=1.0)
    gateway = _cluster_stack(n_models, autoscaler, telemetry,
                             n_replicas=2)
    trace = synthetic_trace(n_models, rate=rate, duration_s=duration,
                            seed=seed)
    fault_s = duration / 3.0

    # replay manually so the fault can be injected mid-run
    gateway.reset()
    for request in trace:
        gateway.ingest(request)
    faulted_at: Optional[float] = None
    pre_fault_replicas = 0
    while gateway.step():
        if faulted_at is None and gateway.clock >= fault_s:
            pre_fault_replicas = gateway.n_replicas
            victim = max(gateway.active_replicas(),
                         key=lambda r: (r.unfinished, r.id))
            gateway.drain_replica(victim)
            faulted_at = gateway.clock
    result = gateway.result()
    assert faulted_at is not None, "fault never injected (trace too short)"

    series = [s for s in telemetry.series()
              if isinstance(s, GaugeSnapshot)]
    invariants: List[InvariantResult] = []
    recover_window = 60.0

    recovered_at = _first_below(
        series, faulted_at, lambda s: float(-s.n_replicas),
        -float(pre_fault_replicas))
    _check(invariants, "replica-count-recovers",
           recovered_at is not None and
           recovered_at - faulted_at <= recover_window,
           f"replicas back to >= {pre_fault_replicas} at "
           f"t={recovered_at} (fault at t={faulted_at:.1f}, "
           f"window {recover_window:.0f}s)")

    drained_at = _first_below(
        series, faulted_at,
        lambda s: s.backlog / max(s.n_replicas, 1), high_wm)
    _check(invariants, "backlog-below-watermark",
           drained_at is not None,
           f"backlog/replica <= {high_wm} at t={drained_at} "
           f"after the fault")

    _check(invariants, "no-request-lost",
           result.n_requests == len(trace),
           f"{result.n_requests}/{len(trace)} requests terminal")

    return ScenarioReport(
        name="replica-failure-mid-burst",
        description="drain the busiest replica mid-burst; the "
                    "autoscaler must restore capacity and drain the "
                    "backlog",
        invariants=invariants, gauges=series,
        metrics={"fault_s": faulted_at,
                 "pre_fault_replicas": float(pre_fault_replicas),
                 "recovered_at_s": float(recovered_at or -1.0),
                 "n_requests": float(result.n_requests)})


@_register("thundering-herd")
def _thundering_herd(quick: bool, seed: int) -> ScenarioReport:
    """A quiet cluster hit by a spike; scale up, then drain the herd."""
    herd = 60 if quick else 200
    n_models = 4
    high_wm = 4.0
    autoscaler = Autoscaler(min_replicas=1, max_replicas=4,
                            high_queue_per_replica=high_wm,
                            low_queue_per_replica=0.5,
                            check_interval_s=2.0,
                            scale_up_cooldown_s=3.0,
                            scale_down_cooldown_s=120.0)
    telemetry = Telemetry(interval_s=1.0)
    gateway = _cluster_stack(n_models, autoscaler, telemetry,
                             n_replicas=1)
    # a trickle, then the herd arrives within one second at t=30
    trickle = synthetic_trace(n_models, rate=0.2, duration_s=30.0,
                              seed=seed)
    herd_trace = synthetic_trace(n_models, rate=float(herd),
                                 duration_s=1.0, seed=seed + 1)
    requests = list(trickle.requests)
    next_id = len(requests)
    for req in herd_trace.requests:
        req.request_id = next_id
        req.arrival_s = 30.0 + req.arrival_s
        next_id += 1
        requests.append(req)
    trace = Trace(requests=requests, model_ids=trickle.model_ids,
                  duration_s=31.0)

    result = gateway.replay(trace)
    series = [s for s in telemetry.series()
              if isinstance(s, GaugeSnapshot)]
    invariants: List[InvariantResult] = []

    peak_replicas = max((s.n_replicas for s in series), default=0)
    _check(invariants, "autoscaler-reacted", peak_replicas > 1,
           f"peak replicas {peak_replicas} > 1 after the herd")

    drained_at = _first_below(
        series, 31.0, lambda s: s.backlog / max(s.n_replicas, 1),
        high_wm)
    _check(invariants, "herd-drains-below-watermark",
           drained_at is not None,
           f"backlog/replica back under {high_wm} at t={drained_at}")

    _check(invariants, "no-request-lost",
           result.n_requests == len(trace),
           f"{result.n_requests}/{len(trace)} requests terminal")

    return ScenarioReport(
        name="thundering-herd",
        description="a quiet cluster takes a one-second spike of "
                    f"{herd} requests; it must scale and drain",
        invariants=invariants, gauges=series,
        metrics={"herd_size": float(herd),
                 "peak_replicas": float(peak_replicas),
                 "drained_at_s": float(drained_at or -1.0)})


@_register("scale-from-zero")
def _scale_from_zero(quick: bool, seed: int) -> ScenarioReport:
    """A floor deployment meets sustained load after a long idle gap."""
    onset_s = 60.0
    duration = 60.0 if quick else 180.0
    rate = 3.0 if quick else 4.0
    n_models = 4
    high_wm = 3.0
    autoscaler = Autoscaler(min_replicas=1, max_replicas=4,
                            high_queue_per_replica=high_wm,
                            low_queue_per_replica=0.5,
                            check_interval_s=2.0,
                            scale_up_cooldown_s=3.0,
                            scale_down_cooldown_s=300.0)
    telemetry = Telemetry(interval_s=1.0)
    gateway = _cluster_stack(n_models, autoscaler, telemetry,
                             n_replicas=1)
    # load starts only after a long cold stretch (the "from zero" part:
    # the deployment sits at its one-replica floor with nothing resident)
    base = synthetic_trace(n_models, rate=rate, duration_s=duration,
                           seed=seed)
    for req in base.requests:
        req.arrival_s += onset_s
    trace = Trace(requests=base.requests, model_ids=base.model_ids,
                  duration_s=onset_s + duration)

    result = gateway.replay(trace)
    series = [s for s in telemetry.series()
              if isinstance(s, GaugeSnapshot)]
    invariants: List[InvariantResult] = []

    scale_window = 60.0
    scaled_at = _first_below(
        series, onset_s, lambda s: float(-s.n_replicas), -2.0)
    _check(invariants, "scales-past-floor",
           scaled_at is not None and scaled_at - onset_s <= scale_window,
           f"replicas >= 2 at t={scaled_at} (onset t={onset_s:.0f}, "
           f"window {scale_window:.0f}s)")

    drained_at = _first_below(
        series, onset_s + duration / 2.0,
        lambda s: s.backlog / max(s.n_replicas, 1), high_wm)
    _check(invariants, "steady-state-below-watermark",
           drained_at is not None,
           f"backlog/replica <= {high_wm} at t={drained_at}")

    _check(invariants, "no-request-lost",
           result.n_requests == len(trace),
           f"{result.n_requests}/{len(trace)} requests terminal")

    return ScenarioReport(
        name="scale-from-zero",
        description="sustained load hits a one-replica floor after a "
                    "long idle stretch; capacity must follow demand",
        invariants=invariants, gauges=series,
        metrics={"onset_s": onset_s,
                 "scaled_at_s": float(scaled_at or -1.0),
                 "drained_at_s": float(drained_at or -1.0)})


@_register("noisy-neighbor")
def _noisy_neighbor(quick: bool, seed: int) -> ScenarioReport:
    """One tenant floods a shared replica; VTC + shedding must hold the
    victim's SLO attainment at its pre-fault level."""
    duration = 90.0 if quick else 240.0
    victim_rate = 0.4
    noisy_quiet, noisy_flood = 0.4, 20.0
    fault_s, clear_s = duration / 3.0, 2.0 * duration / 3.0
    # the noisy tenant's contract caps its in-system requests, so the
    # flood piles up at the admission frontier instead of the engine
    tenants = (Tenant("victim", weight=2.0, slo_class="interactive"),
               Tenant("noisy", weight=1.0, slo_class="batch",
                      max_outstanding=8))

    manager = _manager(4)
    # a deliberately small replica: the flood must actually hurt
    engine = create_engine("deltazip", manager,
                           GPUNode(node_from_name("a800", 1)),
                           scheduler_config=SchedulerConfig(
                               max_batch_requests=4,
                               max_concurrent_deltas=2),
                           engine_config=_engine_config())
    telemetry = Telemetry(interval_s=1.0)
    gateway = TenantGateway(ServingGateway(engine), tenants=tenants,
                            policy="vtc", shed=True, telemetry=telemetry)

    victim_pool = ("variant-00", "variant-01")
    noisy_pool = ("variant-02", "variant-03")
    quiet_a = multi_tenant_trace(
        (TenantWorkload("victim", rate=victim_rate, model_ids=victim_pool),
         TenantWorkload("noisy", rate=noisy_quiet, model_ids=noisy_pool)),
        duration_s=fault_s, seed=seed)
    flood = multi_tenant_trace(
        (TenantWorkload("victim", rate=victim_rate, model_ids=victim_pool),
         TenantWorkload("noisy", rate=noisy_flood, model_ids=noisy_pool)),
        duration_s=clear_s - fault_s, seed=seed + 1)
    quiet_b = multi_tenant_trace(
        (TenantWorkload("victim", rate=victim_rate, model_ids=victim_pool),
         TenantWorkload("noisy", rate=noisy_quiet, model_ids=noisy_pool)),
        duration_s=duration - clear_s, seed=seed + 2)
    requests = list(quiet_a.requests)
    for offset, part in ((fault_s, flood), (clear_s, quiet_b)):
        for req in part.requests:
            req.request_id = len(requests)
            req.arrival_s += offset
            requests.append(req)
    trace = Trace(requests=requests, model_ids=quiet_a.model_ids,
                  duration_s=duration)

    # replay manually to snapshot the victim's attainment pre-fault
    gateway.reset()
    for request in trace:
        gateway.ingest(request)
    pre_fault_attainment: Optional[float] = None
    while gateway.step():
        if pre_fault_attainment is None and gateway.clock >= fault_s:
            latest = telemetry.latest()
            if latest is not None:
                pre_fault_attainment = \
                    latest.attainment.get("victim", 1.0)
    gateway.run_until_drained()
    assert pre_fault_attainment is not None, \
        "pre-fault window produced no gauge snapshot"

    series = [s for s in telemetry.series()
              if isinstance(s, GaugeSnapshot)]
    invariants: List[InvariantResult] = []
    final = gateway.slo_attainment()
    eps = 0.05

    _check(invariants, "victim-attainment-holds",
           final["victim"] >= pre_fault_attainment - eps,
           f"victim attainment {final['victim']:.2%} >= pre-fault "
           f"{pre_fault_attainment:.2%} - {eps:.0%}")

    noisy_stats = gateway.controller.stats["noisy"]
    throttled = noisy_stats.deferred + noisy_stats.shed + \
        noisy_stats.rejected
    _check(invariants, "noisy-tenant-throttled",
           throttled > 0,
           f"noisy tenant throttled {throttled} times "
           f"(deferred {noisy_stats.deferred}, shed {noisy_stats.shed}, "
           f"rejected {noisy_stats.rejected}); attainment "
           f"{final['noisy']:.2%} vs victim {final['victim']:.2%}")

    return ScenarioReport(
        name="noisy-neighbor",
        description="one tenant floods a shared replica under VTC + "
                    "shedding; the victim's SLO attainment must hold",
        invariants=invariants, gauges=series,
        metrics={"pre_fault_attainment": pre_fault_attainment,
                 "final_victim_attainment": final["victim"],
                 "final_noisy_attainment": final["noisy"],
                 "noisy_throttled": float(throttled)})


SCENARIO_NAMES = tuple(sorted(_REGISTRY))


def run_scenario(name: str, quick: bool = False,
                 seed: int = 0) -> ScenarioReport:
    """Run one named drill; deterministic per (name, quick, seed)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {', '.join(SCENARIO_NAMES)}")
    return _REGISTRY[name](quick, seed)


def run_all(quick: bool = False, seed: int = 0) -> List[ScenarioReport]:
    """Every registered drill, in name order."""
    return [run_scenario(name, quick=quick, seed=seed)
            for name in SCENARIO_NAMES]
