"""Periodic gauge snapshots in a bounded ring buffer.

A :class:`GaugeSnapshot` is what a dashboard scrape would see at one
simulated instant: queue pressure, occupancy, shed pressure, scaling
state, and per-tenant SLO attainment (from the streaming sketches, so a
snapshot costs O(tenants), never O(requests)).  The
:class:`GaugeBoard` keeps the last ``capacity`` snapshots — memory is
bounded no matter how long the run — and is consumable mid-run through
``latest()`` / ``series()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["GaugeSnapshot", "GaugeBoard"]


@dataclass(frozen=True)
class GaugeSnapshot:
    """One telemetry tick's view of the serving system.

    ``backlog`` counts arrived-but-unfinished requests inside the
    serving layers plus requests held at the admission frontier;
    ``queued_at_admission`` is the frontier-held part alone.
    ``batch_occupancy`` / ``kv_occupancy`` average the active engines'
    :meth:`~repro.serving.base.ServingEngine.utilization`.
    ``shed_rate_per_s`` is sheds + rejections per simulated second since
    the previous tick.  ``attainment`` maps tenant id → fraction of
    offered requests meeting the tenant's TTFT SLO so far (empty without
    an admission layer).  ``prefix_hit_rate`` is the engines' cumulative
    prefix-cache hit rate (hits / lookups, 0.0 when caching is off) and
    ``prefix_saved_tokens`` the cumulative prefill tokens skipped.
    Under disaggregated serving the ``prefill_*``/``decode_*`` pool
    gauges report per-pool worker counts, mean batch occupancy, and
    backlog (all zero for colocated engines).
    """

    time_s: float
    backlog: int = 0
    unfinished: int = 0
    queued_at_admission: int = 0
    n_replicas: int = 0
    batch_occupancy: float = 0.0
    kv_occupancy: float = 0.0
    shed_rate_per_s: float = 0.0
    n_retired: int = 0
    spans_active: int = 0
    prefix_hit_rate: float = 0.0
    prefix_saved_tokens: int = 0
    prefill_workers: float = 0.0
    decode_workers: float = 0.0
    prefill_occupancy: float = 0.0
    decode_occupancy: float = 0.0
    prefill_backlog: float = 0.0
    decode_backlog: float = 0.0
    attainment: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_s": self.time_s, "backlog": self.backlog,
            "unfinished": self.unfinished,
            "queued_at_admission": self.queued_at_admission,
            "n_replicas": self.n_replicas,
            "batch_occupancy": self.batch_occupancy,
            "kv_occupancy": self.kv_occupancy,
            "shed_rate_per_s": self.shed_rate_per_s,
            "n_retired": self.n_retired,
            "spans_active": self.spans_active,
            "prefix_hit_rate": self.prefix_hit_rate,
            "prefix_saved_tokens": self.prefix_saved_tokens,
            "prefill_workers": self.prefill_workers,
            "decode_workers": self.decode_workers,
            "prefill_occupancy": self.prefill_occupancy,
            "decode_occupancy": self.decode_occupancy,
            "prefill_backlog": self.prefill_backlog,
            "decode_backlog": self.decode_backlog,
            "attainment": dict(self.attainment),
        }


class GaugeBoard:
    """A bounded ring of :class:`GaugeSnapshot` rows."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[GaugeSnapshot] = deque(maxlen=capacity)
        self.n_recorded = 0      # lifetime count (ring may have dropped)

    def record(self, snapshot: GaugeSnapshot) -> None:
        self._ring.append(snapshot)
        self.n_recorded += 1

    def latest(self) -> Optional[GaugeSnapshot]:
        """The most recent snapshot (None before the first tick)."""
        return self._ring[-1] if self._ring else None

    def series(self, key: Optional[str] = None) -> List[object]:
        """All retained snapshots in time order; with ``key`` given,
        the named gauge's values instead (e.g. ``series("backlog")``)."""
        if key is None:
            return list(self._ring)
        return [getattr(snap, key) for snap in self._ring]

    def clear(self) -> None:
        self._ring.clear()
        self.n_recorded = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        last = self._ring[-1].time_s if self._ring else None
        return (f"GaugeBoard(n={len(self._ring)}/{self.capacity}, "
                f"last_t={last})")
