"""Live ops plane: spans, gauges, and scenario drills over kernel events.

The serving stack already publishes a typed event stream through its
:class:`~repro.sim.SimKernel`\\ s; this package turns that stream into
the observability surface a production deployment would have:

* :class:`SpanRecorder` (:mod:`repro.telemetry.spans`) — per-request
  lifecycle spans (``queue → prefill → decode → retire``) with
  tenant/model/replica attributes;
* :class:`GaugeBoard` (:mod:`repro.telemetry.gauges`) — periodic gauge
  snapshots (backlog, occupancy, shed rate, per-tenant SLO attainment,
  replica count) in a bounded ring, consumable mid-run;
* :mod:`repro.telemetry.scenarios` — named stress drills (replica
  failure mid-burst, thundering herd, scale-from-zero, noisy neighbor)
  that *assert* recovery invariants instead of just plotting curves.

Wire it by passing ``telemetry=Telemetry(...)`` to the outermost
gateway (``ServingGateway`` / ``ClusterGateway`` / ``TenantGateway``);
the facade retrofits every layer underneath.  Telemetry is pure
observation: records and replay order are bit-identical with it on,
off, or absent — the regression tests and ``bench_step_overhead.py``
pin that down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..serving.base import ServingEngine
from ..serving.cluster import ClusterGateway
from ..serving.gateway import ServingGateway
from ..serving.streaming_metrics import RecordPolicy
from ..sim.events import Event, TelemetryTick
from ..sim.kernel import SimKernel
from .gauges import GaugeBoard, GaugeSnapshot
from .spans import RequestSpan, SpanRecorder

__all__ = [
    "Telemetry", "SpanRecorder", "RequestSpan", "GaugeBoard",
    "GaugeSnapshot",
]

#: default gauge polling period (simulated seconds)
DEFAULT_INTERVAL_S = 1.0


class Telemetry:
    """The live telemetry plane for one serving stack.

    Owns a :class:`~repro.sim.SimKernel` of its own (so journaling the
    telemetry stream never perturbs the serving kernels), a
    :class:`SpanRecorder` subscribed to it, and a :class:`GaugeBoard`
    filled on a :class:`~repro.sim.TelemetryTick` cadence of
    ``interval_s`` simulated seconds (``None`` disables gauge polling;
    spans still record).  ``span_policy`` defaults to the attached
    engine's ``record_policy``, so ``DROP`` stacks keep span memory
    O(active) automatically.

    Attach by passing the instance as the ``telemetry=`` kwarg of the
    *outermost* gateway; each layer's constructor calls the matching
    ``attach_*`` method, which subscribes the layer's kernel and flips
    the engines' ``emit_phases`` wiring.
    """

    def __init__(self, interval_s: Optional[float] = DEFAULT_INTERVAL_S,
                 gauge_capacity: int = 1024,
                 journal: bool = False,
                 span_policy: "Optional[RecordPolicy | str]" = None,
                 span_sample_k: int = 256) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError("interval_s must be > 0 (or None to disable)")
        self.kernel = SimKernel(journal=journal)
        self._pinned_policy = None if span_policy is None \
            else RecordPolicy(span_policy)
        self.spans = SpanRecorder(
            policy=self._pinned_policy or RecordPolicy.KEEP_ALL,
            sample_k=span_sample_k)
        self.gauges = GaugeBoard(gauge_capacity)
        self.interval_s = interval_s
        self._next_tick: Optional[float] = None
        self._serving: Optional[ServingGateway] = None
        self._cluster: Optional[ClusterGateway] = None
        self._tenancy = None            # TenantGateway (import cycle)
        self._shed_prev: Tuple[float, float] = (0.0, 0.0)
        self.spans.subscribe(self.kernel)

    # ------------------------------------------------------------------ #
    # attachment (called from the gateways' constructors)
    # ------------------------------------------------------------------ #
    def _adopt_policy(self, policy: RecordPolicy) -> None:
        """Inherit the stack's record policy unless the user pinned one."""
        if self._pinned_policy is None and self.spans.n_closed == 0:
            self.spans.policy = RecordPolicy(policy)

    def _wire_engine(self, engine: ServingEngine) -> None:
        """Point an engine's event hook at the telemetry kernel (chained
        after any pre-existing hook) and enable phase emission."""
        prev = engine.on_event
        emit = self.kernel.emit
        if prev is None:
            engine.on_event = emit
        elif prev is not emit:
            chained = prev
            def fanout(event: Event) -> None:
                chained(event)
                emit(event)
            engine.on_event = fanout
        engine.emit_phases = True

    def attach_serving(self, gateway: ServingGateway) -> None:
        """Wire a bare :class:`ServingGateway` (engine events flow
        straight into the telemetry kernel)."""
        if gateway.telemetry is self:
            return
        gateway._telemetry = self
        self._serving = gateway
        self._adopt_policy(gateway.record_policy)
        self._wire_engine(gateway.engine)

    def attach_cluster(self, gateway: ClusterGateway) -> None:
        """Wire a :class:`ClusterGateway`: the cluster kernel forwards
        every event (spawns, drains, ticks, replica engine events) into
        the telemetry kernel; replica engines publish phases."""
        if gateway.telemetry is self:
            return
        gateway._telemetry = self
        self._cluster = gateway
        self._adopt_policy(gateway.record_policy)
        gateway.kernel.subscribe(Event, self.kernel.emit)
        for replica in gateway.replicas + gateway.retired:
            engine = replica.engine
            if engine.on_event is None:
                engine.on_event = gateway.kernel.emit
            engine.emit_phases = True

    def attach_tenancy(self, gateway) -> None:
        """Wire a :class:`~repro.serving.tenancy.TenantGateway` plus the
        gateway it wraps; the tenancy kernel (admission decisions,
        bucket refills, frontier retirements) forwards too."""
        if gateway.telemetry is self:
            return
        inner = gateway.inner
        if isinstance(inner, ClusterGateway):
            self.attach_cluster(inner)
        elif isinstance(inner, ServingGateway):
            self.attach_serving(inner)
        gateway._telemetry = self
        self._tenancy = gateway
        gateway.kernel.subscribe(Event, self.kernel.emit)

    # ------------------------------------------------------------------ #
    # the clock hook (driven by the innermost stepping layer)
    # ------------------------------------------------------------------ #
    def advance(self, now: float) -> None:
        """Advance telemetry time to ``now``, firing every due
        :class:`~repro.sim.TelemetryTick` (and gauge snapshot) on the
        way.  The telemetry clock advances *before* each tick is
        emitted, so the sanitizer's no-past-events invariant holds."""
        interval = self.interval_s
        if interval is None:
            self.kernel.clock.advance(now)
            return
        if self._next_tick is None:
            self._next_tick = interval
        while self._next_tick <= now:
            t = self._next_tick
            self.kernel.clock.advance(t)
            self.kernel.emit(TelemetryTick(time=t))
            self.gauges.record(self._snapshot(t))
            self._next_tick = t + interval
        self.kernel.clock.advance(now)

    # ------------------------------------------------------------------ #
    # gauge assembly
    # ------------------------------------------------------------------ #
    def _engines(self) -> List[ServingEngine]:
        if self._cluster is not None:
            return [r.engine for r in self._cluster.replicas]
        if self._serving is not None:
            return [self._serving.engine]
        return []

    def _snapshot(self, t: float) -> GaugeSnapshot:
        engines = self._engines()
        if self._cluster is not None:
            backlog = self._cluster.backlog
            n_replicas = self._cluster.n_replicas
        elif self._serving is not None:
            backlog = self._serving.backlog
            n_replicas = 1
        else:
            backlog, n_replicas = 0, 0

        queued = 0
        unfinished = backlog
        shed_rate = 0.0
        attainment: Dict[str, float] = {}
        tenancy = self._tenancy
        if tenancy is not None:
            controller = tenancy.controller
            queued = controller.total_queued
            backlog += queued
            unfinished = tenancy.unfinished
            shed_total = float(sum(s.shed + s.rejected
                                   for s in controller.stats.values()))
            prev_t, prev_shed = self._shed_prev
            if t > prev_t:
                shed_rate = (shed_total - prev_shed) / (t - prev_t)
            self._shed_prev = (t, shed_total)
            for tid in sorted(controller.stats):
                stats = controller.stats[tid]
                if not stats.offered:
                    attainment[tid] = 1.0
                    continue
                slo_s = controller.tenant(tid).slo_s
                met = sum(e.metrics.for_tenant(tid)
                          .slo_met_count(slo_s, metric="ttft")
                          for e in engines)
                attainment[tid] = met / stats.offered
        elif self._serving is not None:
            unfinished = self._serving.unfinished
        elif self._cluster is not None:
            unfinished = self._cluster.unfinished

        batch = kv = 0.0
        if engines:
            utils = [e.utilization() for e in engines]
            batch = sum(u["batch_occupancy"] for u in utils) / len(utils)
            kv = sum(u["kv_occupancy"] for u in utils) / len(utils)
        n_retired = sum(e.metrics.n_observed for e in engines)
        lookups = sum(e.stats.prefix_lookups for e in engines)
        hits = sum(e.stats.prefix_hits for e in engines)
        saved = sum(e.stats.prefix_hit_tokens for e in engines)
        pools: Dict[str, float] = {}
        pooled = [e for e in engines if hasattr(e, "pool_gauges")]
        for engine in pooled:
            for key, value in engine.pool_gauges().items():
                pools[key] = pools.get(key, 0.0) + value
        if len(pooled) > 1:
            # occupancies are means per engine; keep them a mean overall
            for key in ("prefill_occupancy", "decode_occupancy"):
                pools[key] = pools.get(key, 0.0) / len(pooled)
        return GaugeSnapshot(
            time_s=t, backlog=backlog, unfinished=unfinished,
            queued_at_admission=queued, n_replicas=n_replicas,
            batch_occupancy=batch, kv_occupancy=kv,
            shed_rate_per_s=shed_rate, n_retired=n_retired,
            spans_active=self.spans.active_count,
            prefix_hit_rate=hits / lookups if lookups else 0.0,
            prefix_saved_tokens=saved,
            prefill_workers=pools.get("prefill_workers", 0.0),
            decode_workers=pools.get("decode_workers", 0.0),
            prefill_occupancy=pools.get("prefill_occupancy", 0.0),
            decode_occupancy=pools.get("decode_occupancy", 0.0),
            prefill_backlog=pools.get("prefill_backlog", 0.0),
            decode_backlog=pools.get("decode_backlog", 0.0),
            attainment=attainment)

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #
    def latest(self) -> Optional[GaugeSnapshot]:
        """The most recent gauge snapshot (None before the first tick)."""
        return self.gauges.latest()

    def series(self, key: Optional[str] = None) -> List[object]:
        """Retained snapshots (or one gauge's values) in time order."""
        return self.gauges.series(key)

    def summary(self) -> Dict[str, object]:
        """One dict for dashboards/tests: span + gauge state so far."""
        latest = self.latest()
        return {"spans": self.spans.summary(),
                "n_snapshots": len(self.gauges),
                "latest": None if latest is None else latest.as_dict()}

    def reset(self) -> None:
        """Fresh timeline (idempotent; every wired layer's ``reset()``
        calls this, and layers share one telemetry instance)."""
        self.kernel.reset()
        self.spans.clear()
        self.gauges.clear()
        self._next_tick = None
        self._shed_prev = (0.0, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Telemetry(interval_s={self.interval_s}, "
                f"snapshots={len(self.gauges)}, "
                f"spans_closed={self.spans.n_closed})")
