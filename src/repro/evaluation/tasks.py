"""Synthetic downstream tasks standing in for the paper's evaluation suites.

The paper grades compression quality on natural-instructions tasks (Amazon
review classification, synthetic palindrome numbers, yes/no QA — Table 1)
and FMT-vs-LoRA on those plus harder ones (GSM8K math — Table 2).  Each
:class:`Task` here generates token-level datasets with the same *role*:

* ``review``    — sequence-majority classification (Amazon reviews);
* ``palindrome``— is the digit string a palindrome? (used verbatim by the
                  paper as a synthetic task);
* ``yesno``     — membership QA: does token X occur in the context?;
* ``nli``       — subsequence entailment: entail / neutral / contradict;
* ``math``      — modular addition with a multi-token answer, the "hard"
                  task where low-rank adapters fall behind FMT (Fig 2).

Every task emits prompts that end with a query separator and scores answers
as multiple-choice over candidate answer tokens via continuation
log-probability — the lm-eval-harness protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["TaskExample", "Task", "TASK_REGISTRY", "make_task",
           "build_training_arrays"]

# token-space layout (vocab must be >= 64)
PAD, EOS, SEP, QUERY = 0, 1, 2, 3
ANSWER_BASE = 4          # answer/label tokens live at 4..15
DIGIT_BASE = 16          # digit tokens 16..25
CONTENT_BASE = 26        # generic content tokens start here


@dataclass
class TaskExample:
    """One graded example: a prompt, the gold answer, and the choices."""

    prompt: List[int]
    answer: List[int]
    choices: List[List[int]]

    @property
    def gold_index(self) -> int:
        return self.choices.index(self.answer)


@dataclass
class Task:
    """A synthetic downstream task (see module docstring)."""

    name: str
    seq_len: int
    n_classes: int
    generator: "callable"
    hard: bool = False  # FMT-vs-LoRA gap expected (Fig 2 / Table 2)

    def examples(self, n: int, rng: np.random.Generator) -> List[TaskExample]:
        return [self.generator(rng) for _ in range(n)]


# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #
def _label_choices(n_classes: int) -> List[List[int]]:
    return [[ANSWER_BASE + i] for i in range(n_classes)]


def _review_example(rng: np.random.Generator, seq_len: int = 12,
                    n_classes: int = 2) -> TaskExample:
    """Majority sentiment: content tokens are drawn from per-class pools."""
    label = int(rng.integers(n_classes))
    pools = [np.arange(CONTENT_BASE + c * 8, CONTENT_BASE + c * 8 + 8)
             for c in range(n_classes)]
    n_major = seq_len // 2 + 1 + int(rng.integers(seq_len // 4 + 1))
    n_major = min(n_major, seq_len)
    tokens = list(rng.choice(pools[label], size=n_major))
    for _ in range(seq_len - n_major):
        other = (label + 1 + int(rng.integers(max(n_classes - 1, 1)))) % n_classes
        tokens.append(int(rng.choice(pools[other])))
    rng.shuffle(tokens)
    prompt = [int(t) for t in tokens] + [QUERY]
    return TaskExample(prompt=prompt, answer=[ANSWER_BASE + label],
                       choices=_label_choices(n_classes))


def _palindrome_example(rng: np.random.Generator, seq_len: int = 8) -> TaskExample:
    half = [int(rng.integers(DIGIT_BASE, DIGIT_BASE + 10))
            for _ in range(seq_len // 2)]
    if rng.random() < 0.5:
        seq = half + half[::-1]
        label = 1
    else:
        seq = [int(rng.integers(DIGIT_BASE, DIGIT_BASE + 10))
               for _ in range(seq_len)]
        label = 1 if seq == seq[::-1] else 0
    prompt = seq + [QUERY]
    return TaskExample(prompt=prompt, answer=[ANSWER_BASE + label],
                       choices=_label_choices(2))


def _yesno_example(rng: np.random.Generator, seq_len: int = 6,
                   pool: int = 10) -> TaskExample:
    """Membership QA with a strong signal: positive contexts repeat the
    probe in about half their positions; negatives omit it entirely."""
    probe = int(rng.integers(CONTENT_BASE, CONTENT_BASE + pool))
    others = [t for t in range(CONTENT_BASE, CONTENT_BASE + pool)
              if t != probe]
    if rng.random() < 0.5:
        label = 1
        n_hits = max(2, seq_len // 2)
        content = [probe] * n_hits + \
            [int(rng.choice(others)) for _ in range(seq_len - n_hits)]
        rng.shuffle(content)
    else:
        label = 0
        content = [int(rng.choice(others)) for _ in range(seq_len)]
    prompt = [probe, SEP] + content + [QUERY]
    return TaskExample(prompt=prompt, answer=[ANSWER_BASE + label],
                       choices=_label_choices(2))


def _nli_example(rng: np.random.Generator, seq_len: int = 6,
                 pool: int = 12) -> TaskExample:
    premise = [int(rng.integers(CONTENT_BASE, CONTENT_BASE + pool))
               for _ in range(seq_len)]
    mode = int(rng.integers(3))
    k = 2
    if mode == 0:  # entail: hypothesis tokens all appear in the premise
        idx = np.sort(rng.choice(seq_len, size=k, replace=False))
        hypothesis = [premise[i] for i in idx]
    elif mode == 1:  # contradict: disjoint tokens
        out_pool = [t for t in range(CONTENT_BASE, CONTENT_BASE + pool)
                    if t not in premise]
        hypothesis = ([int(rng.choice(out_pool)) for _ in range(k)]
                      if out_pool else [CONTENT_BASE] * k)
    else:  # neutral: one in, one out
        inside = premise[int(rng.integers(seq_len))]
        out_pool = [t for t in range(CONTENT_BASE, CONTENT_BASE + pool)
                    if t not in premise]
        outside = int(rng.choice(out_pool)) if out_pool else inside
        hypothesis = [inside, outside]
    label = mode
    prompt = premise + [SEP] + hypothesis + [QUERY]
    return TaskExample(prompt=prompt, answer=[ANSWER_BASE + label],
                       choices=_label_choices(3))


def _math_example(rng: np.random.Generator, modulus: int = 16) -> TaskExample:
    """(a + b) mod 16, answered as two base-4 digit tokens (multi-token)."""
    a = int(rng.integers(modulus))
    b = int(rng.integers(modulus))
    result = (a + b) % modulus
    def digits(v: int) -> List[int]:
        return [DIGIT_BASE + (v // 4), DIGIT_BASE + (v % 4)]
    prompt = [DIGIT_BASE + (a // 4), DIGIT_BASE + (a % 4), SEP,
              DIGIT_BASE + (b // 4), DIGIT_BASE + (b % 4), QUERY]
    choices = [digits(v) for v in range(modulus)]
    return TaskExample(prompt=prompt, answer=digits(result), choices=choices)


TASK_REGISTRY: Dict[str, Task] = {
    "review": Task(name="review", seq_len=13, n_classes=2,
                   generator=_review_example),
    "palindrome": Task(name="palindrome", seq_len=9, n_classes=2,
                       generator=_palindrome_example),
    "yesno": Task(name="yesno", seq_len=9, n_classes=2,
                  generator=_yesno_example),
    "nli": Task(name="nli", seq_len=10, n_classes=3,
                generator=_nli_example),
    "math": Task(name="math", seq_len=8, n_classes=16,
                 generator=_math_example, hard=True),
}


def make_task(name: str) -> Task:
    if name not in TASK_REGISTRY:
        raise KeyError(f"unknown task {name!r}; known: {sorted(TASK_REGISTRY)}")
    return TASK_REGISTRY[name]


def build_training_arrays(examples: Sequence[TaskExample],
                          pad_to: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pack (prompt + answer + EOS) into LM training arrays.

    Inputs are right-padded with PAD; targets shift by one and mask the
    prompt span and padding with -100 so loss covers only answer tokens.
    """
    n = len(examples)
    inputs = np.full((n, pad_to), PAD, dtype=np.int64)
    targets = np.full((n, pad_to), -100, dtype=np.int64)
    for i, ex in enumerate(examples):
        seq = list(ex.prompt) + list(ex.answer) + [EOS]
        if len(seq) > pad_to:
            raise ValueError(
                f"example length {len(seq)} exceeds pad_to {pad_to}")
        inputs[i, :len(seq)] = seq
        answer_start = len(ex.prompt)
        # next-token targets: position j predicts seq[j + 1]
        for j in range(answer_start - 1, len(seq) - 1):
            targets[i, j] = seq[j + 1]
    return inputs, targets
