"""Pre-training the tiny base models on a generic synthetic corpus.

The paper's base models (Llama-2, Pythia, Gemma) carry broad language
competence from pre-training; what matters for the reproduction is that the
*base* is a meaningful shared starting point so fine-tuning deltas are
small relative to the weights (Fig 3).  The corpus mixes the structural
motifs every task builds on — successor chains, repeats, palindromic spans,
copy patterns — without any task's actual prompt/answer format.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn.training import TrainingConfig, train_lm
from ..nn.transformer import TransformerConfig, TransformerModel
from .tasks import CONTENT_BASE, DIGIT_BASE, EOS, PAD, SEP

__all__ = ["generic_corpus", "pretrain_base_model"]


def generic_corpus(n_sequences: int, seq_len: int, vocab_size: int,
                   rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Mixed-structure token corpus for pre-training."""
    inputs = np.zeros((n_sequences, seq_len), dtype=np.int64)
    lo, hi = CONTENT_BASE, vocab_size - 1
    for i in range(n_sequences):
        kind = i % 4
        if kind == 0:  # successor chain
            start = int(rng.integers(lo, hi - seq_len)) \
                if hi - seq_len > lo else lo
            inputs[i] = (start + np.arange(seq_len)) % (hi - lo) + lo
        elif kind == 1:  # repeated motif
            motif_len = int(rng.integers(2, max(3, seq_len // 3)))
            motif = rng.integers(lo, hi, size=motif_len)
            reps = -(-seq_len // motif_len)
            inputs[i] = np.tile(motif, reps)[:seq_len]
        elif kind == 2:  # palindromic span
            half = rng.integers(DIGIT_BASE, DIGIT_BASE + 10,
                                size=seq_len // 2)
            row = np.concatenate([half, half[::-1]])
            if row.size < seq_len:
                row = np.concatenate([row, [EOS] * (seq_len - row.size)])
            inputs[i] = row[:seq_len]
        else:  # copy across a separator: A SEP A
            half_len = (seq_len - 1) // 2
            half = rng.integers(lo, hi, size=half_len)
            row = np.concatenate([half, [SEP], half])
            if row.size < seq_len:
                row = np.concatenate([row, [EOS] * (seq_len - row.size)])
            inputs[i] = row[:seq_len]
    targets = np.concatenate(
        [inputs[:, 1:], np.full((n_sequences, 1), -100, dtype=np.int64)],
        axis=1)
    return inputs, targets


def pretrain_base_model(config: TransformerConfig, n_sequences: int = 256,
                        epochs: int = 6, lr: float = 2e-3,
                        seed: int = 0) -> TransformerModel:
    """Train a fresh model into a usable shared base."""
    rng = np.random.default_rng(seed)
    model = TransformerModel(config, seed=seed)
    seq_len = min(config.max_seq, 24)
    inputs, targets = generic_corpus(n_sequences, seq_len,
                                     config.vocab_size, rng)
    train_lm(model, inputs, targets,
             TrainingConfig(epochs=epochs, lr=lr, batch_size=16, seed=seed))
    return model
