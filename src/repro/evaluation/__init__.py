"""Model-quality evaluation: synthetic tasks, fine-tuning, accuracy harness."""

from .finetune import FinetuneResult, make_task_dataset, run_fmt, run_lora
from .harness import (EvalResult, answer_nll, evaluate_examples,
                      evaluate_nll, evaluate_task)
from .pretrain import generic_corpus, pretrain_base_model
from .tasks import (TASK_REGISTRY, Task, TaskExample, build_training_arrays,
                    make_task)

__all__ = [
    "FinetuneResult", "make_task_dataset", "run_fmt", "run_lora",
    "EvalResult", "answer_nll", "evaluate_examples", "evaluate_nll",
    "evaluate_task",
    "generic_corpus", "pretrain_base_model",
    "TASK_REGISTRY", "Task", "TaskExample", "build_training_arrays",
    "make_task",
]
