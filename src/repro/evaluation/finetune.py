"""Fine-tuning experiment drivers: FMT and LoRA from a shared base.

These produce the checkpoints the compression and serving experiments
consume: ``run_fmt`` is the paradigm DeltaZip serves (all parameters move,
deltas are small — Fig 3); ``run_lora`` is the PEFT comparison of
Fig 2 / Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.lora import LoRAAdapter, LoRAConfig, attach_lora, detach_lora, \
    merge_lora
from ..nn.training import TrainingConfig, train_lm
from ..nn.transformer import TransformerModel
from .tasks import Task, build_training_arrays

__all__ = ["FinetuneResult", "run_fmt", "run_lora", "make_task_dataset"]


@dataclass
class FinetuneResult:
    """A fine-tuned model plus its training artifacts."""

    model: TransformerModel
    loss_history: list
    calibration_tokens: np.ndarray
    adapter: Optional[LoRAAdapter] = None


def make_task_dataset(task: Task, n_train: int, pad_to: int,
                      seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    examples = task.examples(n_train, rng)
    return build_training_arrays(examples, pad_to=pad_to)


def _clone(model: TransformerModel) -> TransformerModel:
    clone = TransformerModel(model.config, seed=0)
    clone.load_state_dict(model.state_dict())
    return clone


def run_fmt(base: TransformerModel, task: Task, n_train: int = 256,
            epochs: int = 6, lr: float = 5e-4, seed: int = 0,
            n_calibration: int = 32) -> FinetuneResult:
    """Full-model tuning: update every parameter on the task data.

    The returned ``calibration_tokens`` are a subset of the training inputs
    — exactly what a developer registers with the Delta Compressor (§4.2).
    """
    model = _clone(base)
    pad_to = min(model.config.max_seq, task.seq_len + 12)
    inputs, targets = make_task_dataset(task, n_train, pad_to, seed=seed)
    history = train_lm(model, inputs, targets,
                       TrainingConfig(epochs=epochs, lr=lr, batch_size=16,
                                      seed=seed))
    calib = inputs[:n_calibration].copy()
    return FinetuneResult(model=model, loss_history=history,
                          calibration_tokens=calib)


def run_lora(base: TransformerModel, task: Task, rank: int = 4,
             alpha: Optional[float] = None, n_train: int = 256,
             epochs: int = 6, lr: float = 5e-3, seed: int = 0,
             target_kinds: Tuple[str, ...] = ("q_proj", "v_proj"),
             merge: bool = True) -> FinetuneResult:
    """LoRA tuning: freeze the base, train low-rank adapters.

    With ``merge=True`` the returned model has the adapter folded in (the
    dense-equivalent checkpoint); the extracted adapter is returned either
    way for the LoRA-serving experiments.
    """
    model = _clone(base)
    config = LoRAConfig(rank=rank,
                        alpha=alpha if alpha is not None else 2.0 * rank,
                        target_kinds=target_kinds)
    attach_lora(model, config, seed=seed)
    pad_to = min(model.config.max_seq, task.seq_len + 12)
    inputs, targets = make_task_dataset(task, n_train, pad_to, seed=seed)
    history = train_lm(model, inputs, targets,
                       TrainingConfig(epochs=epochs, lr=lr, batch_size=16,
                                      seed=seed))
    adapter = detach_lora(model)
    if merge:
        merge_lora(model, adapter)
    else:
        model = _clone(base)
    calib = inputs[:32].copy()
    return FinetuneResult(model=model, loss_history=history,
                          calibration_tokens=calib, adapter=adapter)
