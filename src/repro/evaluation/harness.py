"""Accuracy harness: multiple-choice scoring over task examples.

Plays the role of lm-eval-harness in the paper's Table 1/2: each example is
scored by ranking candidate answers by continuation log-probability under
the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.generation import sequence_logprob
from ..nn.transformer import TransformerModel
from .tasks import Task, TaskExample

__all__ = ["EvalResult", "evaluate_task", "evaluate_examples",
           "answer_nll", "evaluate_nll"]


@dataclass(frozen=True)
class EvalResult:
    """Accuracy of one (model, task) pair."""

    task: str
    accuracy: float
    n_examples: int

    @property
    def percent(self) -> float:
        return 100.0 * self.accuracy


def evaluate_examples(model: TransformerModel,
                      examples: Sequence[TaskExample],
                      task_name: str = "task") -> EvalResult:
    """Score examples by highest mean continuation log-probability."""
    if not examples:
        raise ValueError("no examples to evaluate")
    correct = 0
    for ex in examples:
        scores = []
        for choice in ex.choices:
            logp = sequence_logprob(model, ex.prompt, choice)
            scores.append(logp / len(choice))  # length-normalized
        if int(np.argmax(scores)) == ex.gold_index:
            correct += 1
    return EvalResult(task=task_name, accuracy=correct / len(examples),
                      n_examples=len(examples))


def evaluate_task(model: TransformerModel, task: Task, n_examples: int = 100,
                  seed: int = 1234) -> EvalResult:
    """Generate a held-out eval split and score it."""
    rng = np.random.default_rng(seed)
    examples = task.examples(n_examples, rng)
    return evaluate_examples(model, examples, task_name=task.name)


def answer_nll(model: TransformerModel,
               examples: Sequence[TaskExample]) -> float:
    """Mean per-token negative log-likelihood of the gold answers.

    A continuous quality signal that keeps discriminating where accuracy
    saturates (the regime Table 1's toy-scale caveat lives in).
    """
    if not examples:
        raise ValueError("no examples to score")
    values = [-sequence_logprob(model, ex.prompt, ex.answer) / len(ex.answer)
              for ex in examples]
    return float(np.mean(values))


def evaluate_nll(model: TransformerModel, task: Task, n_examples: int = 100,
                 seed: int = 1234) -> float:
    """Held-out-split convenience wrapper around :func:`answer_nll`."""
    rng = np.random.default_rng(seed)
    return answer_nll(model, task.examples(n_examples, rng))
